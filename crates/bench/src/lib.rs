//! # ise-bench — experiment harness shared code
//!
//! Helpers used by the `experiments` binary (which regenerates every
//! figure/theorem artifact of the paper — see EXPERIMENTS.md) and by the
//! criterion benches: instance measurement, ratio bookkeeping, and plain
//! fixed-width table rendering for reproducible textual reports.

pub mod perf;
pub mod session;

use ise_model::{validate, Instance, ScheduleStats};
use ise_sched::lower_bound::lower_bound;
use ise_sched::{solve, SolverOptions};
use std::time::Instant;

/// One measured solver run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Calibrations in the produced schedule.
    pub calibrations: usize,
    /// Machines used.
    pub machines: usize,
    /// Certified lower bound on the optimum.
    pub lower_bound: u64,
    /// `calibrations / lower_bound` — an upper bound on the true ratio.
    pub ratio: f64,
    /// Utilization of calibrated time.
    pub utilization: f64,
    /// Wall-clock solve time in milliseconds.
    pub millis: f64,
}

/// Solve, validate, and measure one instance. Panics if the solver returns
/// an invalid schedule (experiments must never report unverified numbers).
pub fn measure(instance: &Instance, opts: &SolverOptions) -> Result<Measurement, String> {
    let start = Instant::now();
    let outcome = solve(instance, opts).map_err(|e| e.to_string())?;
    let millis = start.elapsed().as_secs_f64() * 1e3;
    validate(instance, &outcome.schedule).expect("experiment produced an invalid schedule");
    let stats = ScheduleStats::compute(instance, &outcome.schedule);
    let bound = lower_bound(instance, &Default::default());
    Ok(Measurement {
        calibrations: stats.calibrations,
        machines: stats.machines,
        lower_bound: bound.best,
        ratio: stats.calibrations as f64 / bound.best.max(1) as f64,
        utilization: stats.utilization,
        millis,
    })
}

/// Minimal fixed-width table printer (markdown-compatible output).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as a markdown table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Run `work` over `inputs` on scoped worker threads, preserving input
/// order in the output. The experiment sweeps are embarrassingly parallel
/// (one solver run per (n, m, seed) cell), so a plain scoped fan-out covers
/// them without any shared mutable state — results come back through each
/// thread's join handle. Worker count is capped by available parallelism.
pub fn parallel_sweep<I, O, F>(inputs: Vec<I>, work: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(inputs.len().max(1));
    if workers <= 1 || inputs.len() <= 1 {
        return inputs.iter().map(&work).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_slots: Vec<std::sync::Mutex<Option<O>>> = (0..inputs.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(input) = inputs.get(i) else { break };
                let out = work(input);
                *results_slots[i]
                    .lock()
                    .expect("no poisoning: work panics abort the scope") = Some(out);
            });
        }
    });
    results_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("lock free")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_simple_instance() {
        let inst = Instance::new([(0, 40, 5), (0, 40, 5)], 1, 10).unwrap();
        let m = measure(&inst, &SolverOptions::default()).unwrap();
        assert!(m.calibrations >= 1);
        assert!(m.lower_bound >= 1);
        assert!(m.ratio >= 1.0);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        let s = t.render();
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 |  2 |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let inputs: Vec<u64> = (0..50).collect();
        let out = parallel_sweep(inputs.clone(), |&x| x * x);
        assert_eq!(out, inputs.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_sweep_handles_tiny_inputs() {
        assert_eq!(parallel_sweep(Vec::<u32>::new(), |&x| x), Vec::<u32>::new());
        assert_eq!(parallel_sweep(vec![7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_sweep_runs_real_solves() {
        use ise_workloads::{uniform, WorkloadParams};
        let seeds: Vec<u64> = (0..4).collect();
        let out = parallel_sweep(seeds, |&seed| {
            let params = WorkloadParams {
                jobs: 8,
                machines: 1,
                calib_len: 10,
                horizon: 80,
            };
            let inst = uniform(&params, seed);
            measure(&inst, &SolverOptions::default()).map(|m| m.calibrations)
        });
        assert_eq!(out.len(), 4);
        // Deterministic per seed: re-running sequentially matches.
        for (i, seed) in (0..4u64).enumerate() {
            let params = WorkloadParams {
                jobs: 8,
                machines: 1,
                calib_len: 10,
                horizon: 80,
            };
            let inst = uniform(&params, seed);
            let seq = measure(&inst, &SolverOptions::default()).map(|m| m.calibrations);
            assert_eq!(out[i].as_ref().ok(), seq.as_ref().ok());
        }
    }
}
