//! # ise-session — incremental delta-solving sessions
//!
//! Real calibration workloads are not one-shot: jobs arrive, machine
//! budgets get swept, windows move. A [`Session`] owns an evolving
//! [`Instance`] and accepts typed [`Delta`]s; each [`Session::commit`]
//! re-solves the materialized instance through the Fineman–Sheridan
//! pipeline while reusing as much prior work as the delta batch allows:
//!
//! | tier | deltas in the batch | reused work |
//! |------|---------------------|-------------|
//! | [`ReuseTier::Basis`] | only [`Delta::SetMachines`] (or none) | previous optimal LP basis — the machine budget is a pure right-hand-side change, so phase 1 is skipped outright; unchanged short intervals replay from the MM memo |
//! | [`ReuseTier::Warm`]  | job adds/removes (plus budget changes) | previous LP basis offered as a warm start (silently dropped by the simplex if the LP's structure changed); only short intervals whose job content changed re-run the MM black box |
//! | [`ReuseTier::Cold`]  | any structural delta ([`Delta::SetCalibrationLen`], [`Delta::ShiftWindows`]) | nothing — the basis and the per-interval memo are invalidated |
//!
//! Every commit reports what happened in a [`SessionTelemetry`] (tier,
//! invalidated-interval count, LP iterations and an estimate of the
//! iterations saved against a cold solve). Correctness is anchored by the
//! `session` oracle in `ise::conform`: each incremental commit must match
//! a from-scratch solve of the materialized instance on verdict,
//! calibration count, and LP objective, with the schedule fully
//! validated. Cold commits reproduce the from-scratch schedule
//! bit-for-bit; warm-started tiers may stop at a different optimal LP
//! vertex, which permutes calibration placement without changing the
//! count.
//!
//! A commit is transactional: delta validation happens at [`Session::apply`]
//! time (an invalid delta is rejected with the session unchanged), and a
//! solve failure — including a panicking solver, which is caught — leaves
//! the staged deltas intact and the session reusable.

use ise_model::{Instance, Schedule};
use ise_sched::{
    solve_incremental, SchedError, SolveOutcome, SolveReport, SolveReuse, SolverOptions,
};
use std::panic::AssertUnwindSafe;
use std::time::Instant;

/// A typed edit to a session's instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// Append jobs, given as `(release, deadline, processing)` triples.
    /// New jobs take the highest ids.
    AddJobs(Vec<(i64, i64, i64)>),
    /// Remove jobs by their current indices (= ids). Remaining jobs are
    /// re-indexed densely, preserving order.
    RemoveJobs(Vec<usize>),
    /// Change the machine count `m`. A pure LP right-hand-side change.
    SetMachines(usize),
    /// Change the calibration length `T`. Structural: every derived
    /// quantity (long/short split, interval grid, LP points) changes.
    SetCalibrationLen(i64),
    /// Shift every job window by a constant. Structural: the short-window
    /// interval grid is anchored at time zero, so intervals re-partition.
    ShiftWindows(i64),
}

impl Delta {
    /// The best reuse tier a batch containing this delta can claim.
    pub fn tier(&self) -> ReuseTier {
        match self {
            Delta::SetMachines(_) => ReuseTier::Basis,
            Delta::AddJobs(_) | Delta::RemoveJobs(_) => ReuseTier::Warm,
            Delta::SetCalibrationLen(_) | Delta::ShiftWindows(_) => ReuseTier::Cold,
        }
    }

    /// Wire form of this delta (see [`DeltaMsg`]).
    pub fn to_msg(&self) -> DeltaMsg {
        let mut msg = DeltaMsg::default();
        match self {
            Delta::AddJobs(jobs) => {
                msg.op = "add_jobs".to_string();
                msg.jobs = Some(jobs.clone());
            }
            Delta::RemoveJobs(ids) => {
                msg.op = "remove_jobs".to_string();
                msg.ids = Some(ids.clone());
            }
            Delta::SetMachines(m) => {
                msg.op = "set_machines".to_string();
                msg.machines = Some(*m);
            }
            Delta::SetCalibrationLen(t) => {
                msg.op = "set_calib_len".to_string();
                msg.calib_len = Some(*t);
            }
            Delta::ShiftWindows(s) => {
                msg.op = "shift_windows".to_string();
                msg.shift = Some(*s);
            }
        }
        msg
    }
}

/// JSON wire form of a [`Delta`], used by the `serve` session protocol and
/// `ise session` scripts: `{"op": "add_jobs", "jobs": [[0, 30, 5]]}`,
/// `{"op": "remove_jobs", "ids": [0]}`, `{"op": "set_machines",
/// "machines": 3}`, `{"op": "set_calib_len", "calib_len": 12}`,
/// `{"op": "shift_windows", "shift": 40}`.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct DeltaMsg {
    /// One of `add_jobs`, `remove_jobs`, `set_machines`, `set_calib_len`,
    /// `shift_windows`.
    pub op: String,
    /// `(release, deadline, processing)` triples for `add_jobs`.
    pub jobs: Option<Vec<(i64, i64, i64)>>,
    /// Job indices for `remove_jobs`.
    pub ids: Option<Vec<usize>>,
    /// New machine count for `set_machines`.
    pub machines: Option<usize>,
    /// New calibration length for `set_calib_len`.
    pub calib_len: Option<i64>,
    /// Window shift for `shift_windows`.
    pub shift: Option<i64>,
}

impl DeltaMsg {
    /// Decode into a typed [`Delta`], rejecting unknown ops and missing
    /// payloads.
    pub fn decode(&self) -> Result<Delta, SessionError> {
        let missing = |field: &str| {
            SessionError::InvalidDelta(format!("delta op `{}` requires `{field}`", self.op))
        };
        match self.op.as_str() {
            "add_jobs" => Ok(Delta::AddJobs(
                self.jobs.clone().ok_or_else(|| missing("jobs"))?,
            )),
            "remove_jobs" => Ok(Delta::RemoveJobs(
                self.ids.clone().ok_or_else(|| missing("ids"))?,
            )),
            "set_machines" => Ok(Delta::SetMachines(
                self.machines.ok_or_else(|| missing("machines"))?,
            )),
            "set_calib_len" => Ok(Delta::SetCalibrationLen(
                self.calib_len.ok_or_else(|| missing("calib_len"))?,
            )),
            "shift_windows" => Ok(Delta::ShiftWindows(
                self.shift.ok_or_else(|| missing("shift"))?,
            )),
            other => Err(SessionError::InvalidDelta(format!(
                "unknown delta op `{other}` (expected one of add_jobs, remove_jobs, \
                 set_machines, set_calib_len, shift_windows)"
            ))),
        }
    }
}

/// One line of an `ise session` JSONL script: a flat union of the
/// [`DeltaMsg`] fields plus `op: "open"` (with an `instance`) and
/// `op: "solve"` (commit the staged deltas). Example script:
///
/// ```jsonl
/// {"op": "open", "instance": {"jobs": [...], "machines": 1, "calib_len": 10}}
/// {"op": "solve"}
/// {"op": "set_machines", "machines": 2}
/// {"op": "add_jobs", "jobs": [[0, 30, 5]]}
/// {"op": "solve"}
/// ```
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct ScriptStep {
    /// `open`, `solve` (alias `commit`), or any [`DeltaMsg`] op.
    pub op: String,
    /// The instance to open the session on (`open` only).
    pub instance: Option<Instance>,
    /// `(release, deadline, processing)` triples for `add_jobs`.
    pub jobs: Option<Vec<(i64, i64, i64)>>,
    /// Job indices for `remove_jobs`.
    pub ids: Option<Vec<usize>>,
    /// New machine count for `set_machines`.
    pub machines: Option<usize>,
    /// New calibration length for `set_calib_len`.
    pub calib_len: Option<i64>,
    /// Window shift for `shift_windows`.
    pub shift: Option<i64>,
}

/// Decoded form of a [`ScriptStep`].
#[derive(Clone, Debug)]
pub enum ScriptAction {
    /// Open a session on this instance.
    Open(Box<Instance>),
    /// Commit the staged deltas and solve.
    Commit,
    /// Stage one delta.
    Delta(Delta),
}

impl ScriptStep {
    /// Wire form of a delta step (see [`Delta::to_msg`] for the inverse).
    pub fn from_delta(delta: &Delta) -> ScriptStep {
        let msg = delta.to_msg();
        ScriptStep {
            op: msg.op,
            instance: None,
            jobs: msg.jobs,
            ids: msg.ids,
            machines: msg.machines,
            calib_len: msg.calib_len,
            shift: msg.shift,
        }
    }

    /// Decode into a typed action, rejecting unknown ops and missing
    /// payloads.
    pub fn decode(&self) -> Result<ScriptAction, SessionError> {
        match self.op.as_str() {
            "open" => match &self.instance {
                Some(instance) => Ok(ScriptAction::Open(Box::new(instance.clone()))),
                None => Err(SessionError::InvalidDelta(
                    "script op `open` requires `instance`".to_string(),
                )),
            },
            "solve" | "commit" => Ok(ScriptAction::Commit),
            _ => {
                let msg = DeltaMsg {
                    op: self.op.clone(),
                    jobs: self.jobs.clone(),
                    ids: self.ids.clone(),
                    machines: self.machines,
                    calib_len: self.calib_len,
                    shift: self.shift,
                };
                Ok(ScriptAction::Delta(msg.decode()?))
            }
        }
    }
}

/// How much prior work a commit was allowed to reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReuseTier {
    /// Machine-budget-only batch: cached optimal basis, phase 1 skipped.
    Basis,
    /// Job add/remove batch: warm-started LP, memoized short intervals.
    Warm,
    /// Structural batch (or first commit): everything recomputed.
    Cold,
}

impl ReuseTier {
    /// Canonical lowercase name (CLI/metrics label).
    pub fn as_str(self) -> &'static str {
        match self {
            ReuseTier::Basis => "basis",
            ReuseTier::Warm => "warm",
            ReuseTier::Cold => "cold",
        }
    }
}

impl std::fmt::Display for ReuseTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl serde::Serialize for ReuseTier {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.as_str().to_string())
    }
}

/// Per-commit reuse telemetry.
#[derive(Clone, Debug, serde::Serialize)]
pub struct SessionTelemetry {
    /// 1-based commit sequence number within the session.
    pub commit: usize,
    /// Number of deltas in the committed batch.
    pub deltas: usize,
    /// Reuse tier the batch qualified for.
    pub tier: ReuseTier,
    /// Jobs in the materialized instance.
    pub jobs: usize,
    /// Machines in the materialized instance.
    pub machines: usize,
    /// Short-window intervals that had to be recomputed (their job content
    /// changed, or they are new / post-invalidation).
    pub invalidated_intervals: usize,
    /// Short-window intervals replayed from the memo without an MM call.
    pub memo_hits: usize,
    /// Simplex iterations actually spent by the long-window LP.
    pub lp_iterations: usize,
    /// Iterations saved against a cold-solve estimate
    /// ([`ise_sched::lp::cold_iteration_estimate`]); zero when the LP did
    /// not warm-start.
    pub lp_iterations_saved: usize,
    /// Whether the LP accepted the warm-start basis (phase 1 skipped).
    pub warm_started: bool,
    /// Wall-clock microseconds for the whole commit's solve.
    pub solve_us: u64,
}

/// The solve result of one commit.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The materialized instance is feasible; the schedule validates.
    Feasible {
        /// Full solve report (stats, bounds, LP telemetry).
        report: Box<SolveReport>,
        /// The feasible schedule.
        schedule: Schedule,
    },
    /// The materialized instance is certifiably infeasible. The commit
    /// still advances the session (the deltas themselves are valid).
    Infeasible {
        /// Human-readable certificate description.
        reason: String,
    },
}

/// Outcome of a successful [`Session::commit`].
#[derive(Clone, Debug)]
pub struct Commit {
    /// Solve verdict for the materialized instance.
    pub verdict: Verdict,
    /// Reuse telemetry.
    pub telemetry: SessionTelemetry,
}

impl Commit {
    /// Calibration count, when feasible.
    pub fn calibrations(&self) -> Option<usize> {
        match &self.verdict {
            Verdict::Feasible { report, .. } => Some(report.stats.calibrations),
            Verdict::Infeasible { .. } => None,
        }
    }
}

/// Session-level failures. Neither variant corrupts the session: an invalid
/// delta is rejected before any state changes, and a failed or panicking
/// solve leaves the staged deltas in place for a retry.
#[derive(Debug)]
pub enum SessionError {
    /// The delta does not produce a well-formed instance (bad indices,
    /// window smaller than processing time, `T <= 0`, overflow, ...).
    InvalidDelta(String),
    /// The solver failed for a reason other than certified infeasibility
    /// (cancellation, LP breakdown, budget exhaustion).
    Solve(SchedError),
    /// The solver panicked mid-commit; the panic was caught and the
    /// session rolled back.
    SolvePanicked,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::InvalidDelta(why) => write!(f, "invalid delta: {why}"),
            SessionError::Solve(e) => write!(f, "solve failed: {e}"),
            SessionError::SolvePanicked => write!(f, "solver panicked mid-commit"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A stateful delta-solving session. See the crate docs for the reuse-tier
/// table and the transactional commit semantics.
#[derive(Debug)]
pub struct Session {
    /// Instance as of the last commit.
    committed: Instance,
    /// Committed instance plus staged deltas (the next commit's input).
    pending: Instance,
    staged: usize,
    staged_tier: ReuseTier,
    opts: SolverOptions,
    reuse: SolveReuse,
    commits: usize,
}

impl Session {
    /// Open a session on `instance` with default solver options.
    pub fn open(instance: Instance) -> Session {
        Session::with_options(instance, SolverOptions::default())
    }

    /// Open a session with explicit solver options. The options are fixed
    /// for the session's lifetime — reuse correctness depends on every
    /// commit solving with the same configuration.
    pub fn with_options(instance: Instance, opts: SolverOptions) -> Session {
        Session {
            pending: instance.clone(),
            committed: instance,
            staged: 0,
            staged_tier: ReuseTier::Basis,
            opts,
            reuse: SolveReuse::new(),
            commits: 0,
        }
    }

    /// The materialized instance: last commit plus staged deltas.
    pub fn instance(&self) -> &Instance {
        &self.pending
    }

    /// The instance as of the last commit (ignores staged deltas).
    pub fn committed(&self) -> &Instance {
        &self.committed
    }

    /// Number of staged (uncommitted) deltas.
    pub fn staged(&self) -> usize {
        self.staged
    }

    /// Number of commits performed so far.
    pub fn commits(&self) -> usize {
        self.commits
    }

    /// Stage a delta. Validation is immediate: an `Err` leaves the session
    /// exactly as it was.
    pub fn apply(&mut self, delta: &Delta) -> Result<(), SessionError> {
        let _span = ise_obs::Span::enter("session.delta");
        let next = apply_delta(&self.pending, delta)?;
        self.staged_tier = self.staged_tier.max(delta.tier());
        self.pending = next;
        self.staged += 1;
        Ok(())
    }

    /// Drop all staged deltas, reverting the pending instance to the last
    /// committed state.
    pub fn discard_staged(&mut self) {
        self.pending = self.committed.clone();
        self.staged = 0;
        self.staged_tier = ReuseTier::Basis;
    }

    /// Solve the pending instance, committing the staged deltas on success
    /// (including certified infeasibility, which is a valid verdict). On
    /// any other failure the staged deltas remain and the session stays
    /// usable.
    pub fn commit(&mut self) -> Result<Commit, SessionError> {
        self.commit_with(solve_incremental)
    }

    /// As [`Session::commit`] with an explicit solve function — the
    /// poisoned-session tests inject panicking solvers here. Panics are
    /// caught and reported as [`SessionError::SolvePanicked`].
    pub fn commit_with<F>(&mut self, solve: F) -> Result<Commit, SessionError>
    where
        F: FnOnce(&Instance, &SolverOptions, &mut SolveReuse) -> Result<SolveOutcome, SchedError>,
    {
        // First commit has nothing to reuse; afterwards the tier is the
        // worst tier among the staged deltas.
        let tier = if self.commits == 0 {
            ReuseTier::Cold
        } else {
            self.staged_tier
        };
        let mut reuse = match tier {
            ReuseTier::Cold => {
                // Structural commit: invalidate the basis and the memo, but
                // keep the simplex workspace — its scratch buffers are
                // content-free, so recycling them is always sound and keeps
                // even cold re-solves allocation-light.
                let _span = ise_obs::Span::enter("session.invalidate");
                let workspace = std::mem::take(&mut self.reuse).workspace;
                self.reuse = SolveReuse::new();
                SolveReuse {
                    workspace,
                    ..SolveReuse::new()
                }
            }
            _ => std::mem::take(&mut self.reuse),
        };

        let started = Instant::now();
        let result = {
            let span_name = match tier {
                ReuseTier::Cold => "session.solve",
                _ => "session.reuse",
            };
            let _span = ise_obs::Span::enter(span_name);
            let pending = &self.pending;
            let opts = &self.opts;
            let reuse = &mut reuse;
            std::panic::catch_unwind(AssertUnwindSafe(move || solve(pending, opts, reuse)))
        };
        let solve_us = started.elapsed().as_micros() as u64;

        let result = match result {
            Ok(r) => r,
            Err(_) => {
                // The solver panicked: keep whatever reuse state survived
                // (memo entries are content-addressed and always valid) and
                // leave the staged deltas for a retry.
                self.reuse = reuse;
                return Err(SessionError::SolvePanicked);
            }
        };

        let (verdict, lp_iterations, warm_started, lp_iterations_saved) = match result {
            Ok(outcome) => {
                let (iters, warm, saved) = outcome.long.as_ref().map_or((0, false, 0), |l| {
                    let f = &l.fractional;
                    let saved = if f.warm_used {
                        ise_sched::lp::cold_iteration_estimate(f).saturating_sub(f.iterations)
                    } else {
                        0
                    };
                    (f.iterations, f.warm_used, saved)
                });
                let verdict = Verdict::Feasible {
                    report: Box::new(SolveReport::new(&self.pending, &outcome)),
                    schedule: outcome.schedule.clone(),
                };
                (verdict, iters, warm, saved)
            }
            Err(SchedError::Infeasible { reason }) => (Verdict::Infeasible { reason }, 0, false, 0),
            Err(other) => {
                self.reuse = reuse;
                return Err(SessionError::Solve(other));
            }
        };

        let telemetry = SessionTelemetry {
            commit: self.commits + 1,
            deltas: self.staged,
            tier,
            jobs: self.pending.len(),
            machines: self.pending.machines(),
            invalidated_intervals: reuse.memo.last_misses(),
            memo_hits: reuse.memo.last_hits(),
            lp_iterations,
            lp_iterations_saved,
            warm_started,
            solve_us,
        };

        self.committed = self.pending.clone();
        self.staged = 0;
        self.staged_tier = ReuseTier::Basis;
        self.reuse = reuse;
        self.commits += 1;
        Ok(Commit { verdict, telemetry })
    }
}

/// Apply one delta to an instance, returning the new instance or an error
/// (the input is never modified).
fn apply_delta(instance: &Instance, delta: &Delta) -> Result<Instance, SessionError> {
    let mut triples: Vec<(i64, i64, i64)> = instance
        .jobs()
        .iter()
        .map(|j| (j.release.ticks(), j.deadline.ticks(), j.proc.ticks()))
        .collect();
    let mut machines = instance.machines();
    let mut calib_len = instance.calib_len().ticks();
    match delta {
        Delta::AddJobs(specs) => triples.extend(specs.iter().copied()),
        Delta::RemoveJobs(ids) => {
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != ids.len() {
                return Err(SessionError::InvalidDelta(
                    "duplicate indices in remove_jobs".to_string(),
                ));
            }
            if let Some(&max) = sorted.last() {
                if max >= triples.len() {
                    return Err(SessionError::InvalidDelta(format!(
                        "remove_jobs index {max} out of range for {} jobs",
                        triples.len()
                    )));
                }
            }
            for &i in sorted.iter().rev() {
                triples.remove(i);
            }
        }
        Delta::SetMachines(m) => machines = *m,
        Delta::SetCalibrationLen(t) => calib_len = *t,
        Delta::ShiftWindows(s) => {
            for t in triples.iter_mut() {
                t.0 = t.0.checked_add(*s).ok_or_else(|| {
                    SessionError::InvalidDelta("shift_windows overflows a release".to_string())
                })?;
                t.1 = t.1.checked_add(*s).ok_or_else(|| {
                    SessionError::InvalidDelta("shift_windows overflows a deadline".to_string())
                })?;
            }
        }
    }
    Instance::new(triples, machines, calib_len)
        .map_err(|e| SessionError::InvalidDelta(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_model::validate;
    use ise_sched::solve;

    fn mixed() -> Instance {
        // T = 10: jobs 0-1 long, 2-3 short.
        Instance::new([(0, 40, 7), (5, 50, 6), (0, 12, 6), (20, 33, 8)], 1, 10).unwrap()
    }

    fn scratch(instance: &Instance) -> Result<SolveOutcome, SchedError> {
        solve(instance, &SolverOptions::default())
    }

    // Cold commits must reproduce the scratch schedule bit-for-bit (same
    // code path). Warm-started tiers may stop at a different optimal LP
    // vertex, so only the vertex-independent outputs are compared.
    fn assert_matches_scratch(session: &Session, commit: &Commit) {
        let materialized = session.committed();
        match (&commit.verdict, scratch(materialized)) {
            (Verdict::Feasible { schedule, report }, Ok(out)) => {
                validate(materialized, schedule).unwrap();
                if commit.telemetry.tier == ReuseTier::Cold {
                    assert_eq!(
                        *schedule, out.schedule,
                        "cold schedule diverged from scratch"
                    );
                }
                assert_eq!(
                    schedule.num_calibrations(),
                    out.schedule.num_calibrations(),
                    "calibration count diverged from scratch"
                );
                assert_eq!(
                    report.stats.calibrations,
                    schedule.num_calibrations(),
                    "report count diverged from the schedule"
                );
            }
            (Verdict::Infeasible { .. }, Err(SchedError::Infeasible { .. })) => {}
            (v, s) => panic!("verdict mismatch: incremental {v:?} vs scratch {s:?}"),
        }
    }

    #[test]
    fn first_commit_is_cold_and_matches_scratch() {
        let mut s = Session::open(mixed());
        let c = s.commit().unwrap();
        assert_eq!(c.telemetry.tier, ReuseTier::Cold);
        assert_eq!(c.telemetry.commit, 1);
        assert!(!c.telemetry.warm_started);
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn machine_budget_delta_is_basis_tier() {
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        s.apply(&Delta::SetMachines(2)).unwrap();
        let c = s.commit().unwrap();
        assert_eq!(c.telemetry.tier, ReuseTier::Basis);
        assert!(c.telemetry.warm_started, "rhs-only change must warm-start");
        assert_eq!(s.instance().machines(), 2);
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn job_deltas_are_warm_tier_and_replay_unchanged_intervals() {
        let mut s = Session::open(mixed());
        let first = s.commit().unwrap();
        assert!(first.telemetry.invalidated_intervals >= 1);
        // A long job joins; the two short intervals are untouched.
        s.apply(&Delta::AddJobs(vec![(10, 60, 9)])).unwrap();
        let c = s.commit().unwrap();
        assert_eq!(c.telemetry.tier, ReuseTier::Warm);
        assert_eq!(c.telemetry.invalidated_intervals, 0);
        assert!(c.telemetry.memo_hits >= 1);
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn overflowing_shift_is_rejected_and_session_survives() {
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        // A shift that wraps i64 is rejected before any state changes...
        let err = s.apply(&Delta::ShiftWindows(i64::MAX)).unwrap_err();
        assert!(
            matches!(&err, SessionError::InvalidDelta(why) if why.contains("overflow")),
            "unexpected error: {err}"
        );
        // ...and one that stays in i64 but leaves the representable
        // horizon is caught by instance validation on the same path.
        let err = s
            .apply(&Delta::ShiftWindows(ise_model::MAX_INSTANCE_TICKS))
            .unwrap_err();
        assert!(
            matches!(&err, SessionError::InvalidDelta(why) if why.contains("horizon")),
            "unexpected error: {err}"
        );
        // The committed state is intact and the session still solves.
        assert_eq!(s.instance(), &mixed());
        s.apply(&Delta::ShiftWindows(5)).unwrap();
        let c = s.commit().unwrap();
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn structural_deltas_fall_back_cold() {
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        s.apply(&Delta::ShiftWindows(40)).unwrap();
        let c = s.commit().unwrap();
        assert_eq!(c.telemetry.tier, ReuseTier::Cold);
        assert_eq!(c.telemetry.memo_hits, 0, "cold commit must not reuse");
        assert_matches_scratch(&s, &c);

        s.apply(&Delta::SetCalibrationLen(11)).unwrap();
        let c = s.commit().unwrap();
        assert_eq!(c.telemetry.tier, ReuseTier::Cold);
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn batches_take_the_worst_tier() {
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        s.apply(&Delta::SetMachines(3)).unwrap();
        s.apply(&Delta::AddJobs(vec![(0, 40, 5)])).unwrap();
        let c = s.commit().unwrap();
        assert_eq!(c.telemetry.tier, ReuseTier::Warm);
        assert_eq!(c.telemetry.deltas, 2);
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn invalid_deltas_are_rejected_atomically() {
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        let before = s.instance().clone();
        // p > T after shrinking the calibration length.
        assert!(matches!(
            s.apply(&Delta::SetCalibrationLen(5)),
            Err(SessionError::InvalidDelta(_))
        ));
        assert!(matches!(
            s.apply(&Delta::RemoveJobs(vec![0, 0])),
            Err(SessionError::InvalidDelta(_))
        ));
        assert!(matches!(
            s.apply(&Delta::RemoveJobs(vec![99])),
            Err(SessionError::InvalidDelta(_))
        ));
        assert!(matches!(
            s.apply(&Delta::SetMachines(0)),
            Err(SessionError::InvalidDelta(_))
        ));
        assert_eq!(*s.instance(), before);
        assert_eq!(s.staged(), 0);
        // The session still commits cleanly.
        let c = s.commit().unwrap();
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn remove_jobs_reindexes_densely() {
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        s.apply(&Delta::RemoveJobs(vec![0, 2])).unwrap();
        assert_eq!(s.instance().len(), 2);
        let c = s.commit().unwrap();
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn infeasible_commit_advances_the_session() {
        // 10 ten-tick long jobs in [0, 20) on one machine: certified
        // infeasible at speed 1.
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        s.apply(&Delta::AddJobs(
            (0..10).map(|_| (0i64, 20i64, 10i64)).collect(),
        ))
        .unwrap();
        let c = s.commit().unwrap();
        assert!(matches!(c.verdict, Verdict::Infeasible { .. }));
        assert_eq!(c.calibrations(), None);
        assert_eq!(s.commits(), 2);
        assert_matches_scratch(&s, &c);
        // Removing them recovers feasibility.
        let n = s.instance().len();
        s.apply(&Delta::RemoveJobs((n - 10..n).collect())).unwrap();
        let c = s.commit().unwrap();
        assert!(matches!(c.verdict, Verdict::Feasible { .. }));
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn panicking_solve_leaves_the_session_reusable() {
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        s.apply(&Delta::AddJobs(vec![(0, 40, 5)])).unwrap();
        let err = s.commit_with(|_, _, _| panic!("injected solver panic"));
        assert!(matches!(err, Err(SessionError::SolvePanicked)));
        // Staged deltas survive; a retry with the real solver succeeds and
        // still matches a from-scratch solve.
        assert_eq!(s.staged(), 1);
        let c = s.commit().unwrap();
        assert_eq!(c.telemetry.deltas, 1);
        assert_matches_scratch(&s, &c);
    }

    #[test]
    fn empty_commit_resolves_with_full_reuse() {
        let mut s = Session::open(mixed());
        let cold = s.commit().unwrap();
        let warm = s.commit().unwrap();
        assert_eq!(warm.telemetry.tier, ReuseTier::Basis);
        assert_eq!(warm.telemetry.deltas, 0);
        assert_eq!(warm.telemetry.invalidated_intervals, 0);
        assert!(warm.telemetry.lp_iterations <= cold.telemetry.lp_iterations);
        assert_matches_scratch(&s, &warm);
    }

    #[test]
    fn discard_staged_reverts_to_committed() {
        let mut s = Session::open(mixed());
        s.commit().unwrap();
        let before = s.instance().clone();
        s.apply(&Delta::AddJobs(vec![(0, 40, 5)])).unwrap();
        assert_ne!(*s.instance(), before);
        s.discard_staged();
        assert_eq!(*s.instance(), before);
        assert_eq!(s.staged(), 0);
    }

    #[test]
    fn delta_msgs_round_trip() {
        let deltas = vec![
            Delta::AddJobs(vec![(0, 30, 5), (2, 25, 6)]),
            Delta::RemoveJobs(vec![1]),
            Delta::SetMachines(4),
            Delta::SetCalibrationLen(12),
            Delta::ShiftWindows(-7),
        ];
        for d in &deltas {
            let json = serde_json::to_string(&d.to_msg()).unwrap();
            let back: DeltaMsg = serde_json::from_str(&json).unwrap();
            assert_eq!(back.decode().unwrap(), *d);
        }
        let bad: DeltaMsg = serde_json::from_str(r#"{"op":"warp_time"}"#).unwrap();
        assert!(matches!(bad.decode(), Err(SessionError::InvalidDelta(_))));
        let missing: DeltaMsg = serde_json::from_str(r#"{"op":"add_jobs"}"#).unwrap();
        assert!(matches!(
            missing.decode(),
            Err(SessionError::InvalidDelta(_))
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 24, .. proptest::prelude::ProptestConfig::default()
        })]

        /// Shifts of any magnitude — including ones that land at or past
        /// the representable horizon (`i64::MAX / 36`) — either apply
        /// cleanly or are rejected with `InvalidDelta`, and a rejection
        /// leaves the session solvable. Never a wrap or a panic.
        #[test]
        fn extreme_shifts_never_corrupt_the_session(
            base in -4i64..4,
            scale in 0u32..63,
            negative in proptest::prelude::any::<bool>(),
        ) {
            let magnitude = (1i64 << scale).saturating_add(base);
            let shift = if negative { magnitude.saturating_neg() } else { magnitude };
            let mut s = Session::open(mixed());
            s.commit().unwrap();
            match s.apply(&Delta::ShiftWindows(shift)) {
                Ok(()) => {
                    // Applied: the staged instance is well-formed, ticks in
                    // range by construction of `Instance::new`.
                    proptest::prop_assert!(s.instance().jobs().iter().all(|j| {
                        j.release.ticks().abs() <= ise_model::MAX_INSTANCE_TICKS
                    }));
                }
                Err(SessionError::InvalidDelta(_)) => {
                    // Rejected: committed state intact, still solvable.
                    proptest::prop_assert_eq!(s.instance(), &mixed());
                    let c = s.commit().unwrap();
                    proptest::prop_assert!(
                        matches!(c.verdict, Verdict::Feasible { .. })
                    );
                }
                Err(e) => proptest::prop_assert!(false, "unexpected error class: {e}"),
            }
        }
    }
}
