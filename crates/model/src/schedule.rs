//! Schedules: calibrations plus nonpreemptive job placements.
//!
//! A [`Schedule`] may be *time-refined* and *speed-augmented*:
//!
//! * `time_scale = k` means every [`Time`] stored in the schedule is measured
//!   in units of `1/k` tick. Instance quantities are converted by
//!   multiplying by `k`. The paper's Theorem 14 transformation places jobs at
//!   offsets that are multiples of `T / (2c)`, which are representable
//!   exactly after refining ticks by `2c`.
//! * `speed = s` means every machine runs `s` times faster, so job `j`
//!   occupies `p_j * time_scale / s` schedule units. The validator requires
//!   this to divide exactly (the algorithms always choose
//!   `time_scale = speed`).
//!
//! Ordinary (1-speed) schedules have `time_scale = speed = 1`.

use crate::job::JobId;
use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// Identifier of a machine within a schedule. Machines are identical, so the
/// id is just an index used to check non-overlap constraints.
pub type MachineId = usize;

/// One calibration: machine `machine` becomes usable on
/// `[start, start + T)` (in schedule time units).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Calibration {
    /// Schedule time at which the calibration is performed.
    pub start: Time,
    /// Machine being calibrated.
    pub machine: MachineId,
}

/// One nonpreemptive execution of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// The job being run.
    pub job: JobId,
    /// Machine on which it runs.
    pub machine: MachineId,
    /// Schedule time at which it starts.
    pub start: Time,
}

/// A complete ISE schedule: a set of calibrations and a placement for every
/// job. Construct with [`Schedule::new`] for plain schedules or
/// [`Schedule::with_augmentation`] for refined/speed-augmented ones, then
/// check with [`crate::validate()`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// All calibrations, in no particular order.
    pub calibrations: Vec<Calibration>,
    /// All job placements, in no particular order.
    pub placements: Vec<Placement>,
    /// Time refinement factor `k >= 1`: stored times are in units of
    /// `1/k` tick.
    pub time_scale: i64,
    /// Machine speed `s >= 1`.
    pub speed: i64,
}

impl Schedule {
    /// An empty 1-speed, unrefined schedule.
    pub fn new() -> Schedule {
        Schedule::with_augmentation(1, 1)
    }

    /// An empty schedule with the given time refinement and speed.
    pub fn with_augmentation(time_scale: i64, speed: i64) -> Schedule {
        assert!(time_scale >= 1, "time_scale must be >= 1");
        assert!(speed >= 1, "speed must be >= 1");
        Schedule {
            calibrations: Vec::new(),
            placements: Vec::new(),
            time_scale,
            speed,
        }
    }

    /// Add a calibration at `start` (schedule units) on `machine`.
    pub fn calibrate(&mut self, machine: MachineId, start: Time) {
        self.calibrations.push(Calibration { start, machine });
    }

    /// Add a placement of `job` at `start` (schedule units) on `machine`.
    pub fn place(&mut self, job: JobId, machine: MachineId, start: Time) {
        self.placements.push(Placement {
            job,
            machine,
            start,
        });
    }

    /// Number of calibrations — the objective value of the ISE problem.
    #[inline]
    pub fn num_calibrations(&self) -> usize {
        self.calibrations.len()
    }

    /// Number of distinct machines that carry at least one calibration or
    /// placement.
    pub fn machines_used(&self) -> usize {
        let mut ids: Vec<MachineId> = self
            .calibrations
            .iter()
            .map(|c| c.machine)
            .chain(self.placements.iter().map(|p| p.machine))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Convert an instance-level duration to schedule units.
    #[inline]
    pub fn scale_dur(&self, d: Dur) -> Dur {
        d.scale(self.time_scale)
    }

    /// Convert an instance-level time to schedule units.
    #[inline]
    pub fn scale_time(&self, t: Time) -> Time {
        t.scale(self.time_scale)
    }

    /// The execution length of a job with processing time `p` in schedule
    /// units: `p * time_scale / speed`. Returns `None` if the speed does not
    /// divide evenly (the validator treats that as an error).
    pub fn exec_len(&self, p: Dur) -> Option<Dur> {
        let scaled = p.ticks().checked_mul(self.time_scale)?;
        if scaled % self.speed != 0 {
            return None;
        }
        Some(Dur(scaled / self.speed))
    }

    /// Calibration length in schedule units.
    #[inline]
    pub fn calib_len_scaled(&self, calib_len: Dur) -> Dur {
        self.scale_dur(calib_len)
    }

    /// Remove calibrations that contain no placement. Never affects
    /// validity; used by the practical front end (the paper's Algorithm 5
    /// calibrates unconditionally and its bound counts those calibrations).
    pub fn trim_empty_calibrations(&mut self, calib_len: Dur) {
        let len = self.calib_len_scaled(calib_len);
        let placements = std::mem::take(&mut self.placements);
        self.calibrations.retain(|c| {
            placements
                .iter()
                .any(|p| p.machine == c.machine && c.start <= p.start && p.start < c.start + len)
        });
        self.placements = placements;
    }

    /// Renumber machines densely (0..machines_used) preserving relative
    /// order. Useful after taking unions of sub-schedules with sparse ids.
    pub fn compact_machines(&mut self) {
        let mut ids: Vec<MachineId> = self
            .calibrations
            .iter()
            .map(|c| c.machine)
            .chain(self.placements.iter().map(|p| p.machine))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let remap = |m: MachineId| ids.binary_search(&m).expect("machine id present");
        for c in &mut self.calibrations {
            c.machine = remap(c.machine);
        }
        for p in &mut self.placements {
            p.machine = remap(p.machine);
        }
    }

    /// Merge another schedule into this one, offsetting the other's machine
    /// ids by `machine_offset`. Both must have the same augmentation.
    pub fn absorb(&mut self, other: Schedule, machine_offset: usize) {
        assert_eq!(
            self.time_scale, other.time_scale,
            "mismatched time_scale in absorb"
        );
        assert_eq!(self.speed, other.speed, "mismatched speed in absorb");
        self.calibrations
            .extend(other.calibrations.into_iter().map(|c| Calibration {
                machine: c.machine + machine_offset,
                ..c
            }));
        self.placements
            .extend(other.placements.into_iter().map(|p| Placement {
                machine: p.machine + machine_offset,
                ..p
            }));
    }

    /// The placement of a given job, if any.
    pub fn placement_of(&self, job: JobId) -> Option<&Placement> {
        self.placements.iter().find(|p| p.job == job)
    }
}

impl Default for Schedule {
    fn default() -> Schedule {
        Schedule::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_used_counts_distinct() {
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.calibrate(2, Time(0));
        s.place(JobId(0), 2, Time(1));
        s.place(JobId(1), 5, Time(1));
        assert_eq!(s.machines_used(), 3);
        assert_eq!(s.num_calibrations(), 2);
    }

    #[test]
    fn exec_len_requires_exact_division() {
        let s = Schedule::with_augmentation(4, 4);
        assert_eq!(s.exec_len(Dur(3)), Some(Dur(3)));
        let odd = Schedule::with_augmentation(1, 2);
        assert_eq!(odd.exec_len(Dur(3)), None);
        assert_eq!(odd.exec_len(Dur(4)), Some(Dur(2)));
    }

    #[test]
    fn trim_empty_calibrations_keeps_used_ones() {
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.calibrate(0, Time(10));
        s.calibrate(1, Time(0));
        s.place(JobId(0), 0, Time(12));
        s.trim_empty_calibrations(Dur(10));
        assert_eq!(
            s.calibrations,
            vec![Calibration {
                start: Time(10),
                machine: 0
            }]
        );
        assert_eq!(s.placements.len(), 1);
    }

    #[test]
    fn absorb_offsets_machines() {
        let mut a = Schedule::new();
        a.calibrate(0, Time(0));
        let mut b = Schedule::new();
        b.calibrate(1, Time(5));
        b.place(JobId(0), 1, Time(6));
        a.absorb(b, 10);
        assert_eq!(a.calibrations[1].machine, 11);
        assert_eq!(a.placements[0].machine, 11);
    }

    #[test]
    fn compact_machines_renumbers_densely() {
        let mut s = Schedule::new();
        s.calibrate(7, Time(0));
        s.calibrate(3, Time(0));
        s.place(JobId(0), 7, Time(1));
        s.compact_machines();
        assert_eq!(s.machines_used(), 2);
        let mut machines: Vec<_> = s.calibrations.iter().map(|c| c.machine).collect();
        machines.sort_unstable();
        assert_eq!(machines, vec![0, 1]);
        assert_eq!(s.placements[0].machine, 1); // 7 was the larger id
    }

    #[test]
    #[should_panic(expected = "mismatched time_scale")]
    fn absorb_rejects_mismatched_scale() {
        let mut a = Schedule::new();
        let b = Schedule::with_augmentation(2, 2);
        a.absorb(b, 0);
    }
}
