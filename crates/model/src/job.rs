//! Jobs: the unit of work in the ISE problem.

use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a job, stable across all transformations. Job ids are
/// indices into the owning [`crate::Instance`]'s job vector.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One job of the ISE problem: processing time `p`, release time `r`, and
/// deadline `d`, with `r + p <= d` and (in a valid [`crate::Instance`])
/// `p <= T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Stable identifier (index in the instance).
    pub id: JobId,
    /// Release time `r_j`: the job may not start before this.
    pub release: Time,
    /// Deadline `d_j`: the job must complete by this time.
    pub deadline: Time,
    /// Processing time `p_j > 0`.
    pub proc: Dur,
}

impl Job {
    /// Construct a job; panics if the window cannot contain the processing
    /// time. Use [`crate::InstanceBuilder`] for fallible construction.
    pub fn new(
        id: u32,
        release: impl Into<i64>,
        deadline: impl Into<i64>,
        proc: impl Into<i64>,
    ) -> Job {
        let job = Job {
            id: JobId(id),
            release: Time(release.into()),
            deadline: Time(deadline.into()),
            proc: Dur(proc.into()),
        };
        assert!(
            job.proc.is_positive(),
            "job {id}: processing time must be positive"
        );
        assert!(
            job.release + job.proc <= job.deadline,
            "job {id}: window [{}, {}) cannot fit processing time {}",
            job.release,
            job.deadline,
            job.proc
        );
        job
    }

    /// Window length `d_j - r_j`.
    #[inline]
    pub fn window(&self) -> Dur {
        self.deadline - self.release
    }

    /// Latest feasible start time `d_j - p_j`.
    #[inline]
    pub fn latest_start(&self) -> Time {
        self.deadline - self.proc
    }

    /// Slack `d_j - r_j - p_j`: how much the job can be shifted within its
    /// window.
    #[inline]
    pub fn slack(&self) -> Dur {
        self.window() - self.proc
    }

    /// Definition 1 of the paper: a job is *long* (long-window) iff
    /// `d_j - r_j >= 2T`.
    #[inline]
    pub fn is_long(&self, calib_len: Dur) -> bool {
        self.window() >= calib_len * 2
    }

    /// Definition 1 of the paper: a job is *short* (short-window) iff
    /// `d_j - r_j < 2T`.
    #[inline]
    pub fn is_short(&self, calib_len: Dur) -> bool {
        !self.is_long(calib_len)
    }

    /// True if the TISE restriction admits a calibration starting at `t` for
    /// this job: the calibration `[t, t+T)` must fall completely inside the
    /// job's window, i.e. `r_j <= t <= d_j - T`.
    #[inline]
    pub fn tise_admits(&self, t: Time, calib_len: Dur) -> bool {
        self.release <= t && t + calib_len <= self.deadline
    }

    /// True if the (plain ISE) problem admits *some* execution of this job
    /// inside a calibration starting at `t`: there must exist a start
    /// `x >= max(r_j, t)` with `x + p_j <= min(d_j, t + T)`.
    #[inline]
    pub fn ise_admits(&self, t: Time, calib_len: Dur) -> bool {
        self.release.max(t) + self.proc <= self.deadline.min(t + calib_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Dur {
        Dur(10)
    }

    #[test]
    fn window_and_slack() {
        let j = Job::new(0, 5, 30, 7);
        assert_eq!(j.window(), Dur(25));
        assert_eq!(j.slack(), Dur(18));
        assert_eq!(j.latest_start(), Time(23));
    }

    #[test]
    fn long_short_threshold_is_2t() {
        // Window exactly 2T is long; just below is short (Definition 1).
        let long = Job::new(0, 0, 20, 5);
        let short = Job::new(1, 0, 19, 5);
        assert!(long.is_long(t()));
        assert!(!long.is_short(t()));
        assert!(short.is_short(t()));
        assert!(!short.is_long(t()));
    }

    #[test]
    fn tise_admissibility_is_window_containment() {
        let j = Job::new(0, 5, 30, 3);
        assert!(j.tise_admits(Time(5), t()));
        assert!(j.tise_admits(Time(20), t()));
        assert!(!j.tise_admits(Time(21), t())); // calibration would end at 31 > 30
        assert!(!j.tise_admits(Time(4), t())); // starts before release
    }

    #[test]
    fn ise_admissibility_allows_partial_overlap() {
        let j = Job::new(0, 5, 30, 3);
        // Calibration [0,10): job can run at [5,8) even though the
        // calibration starts before the release.
        assert!(j.ise_admits(Time(0), t()));
        // Calibration [26,36): job can run at [26,29).
        assert!(j.ise_admits(Time(26), t()));
        // Calibration [28,38): only [28,30) of the window remains: too short.
        assert!(!j.ise_admits(Time(28), t()));
        // Calibration ending before the release plus proc is useless.
        assert!(!j.ise_admits(Time(-3), t()));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn rejects_window_smaller_than_proc() {
        let _ = Job::new(0, 0, 4, 5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_proc() {
        let _ = Job::new(0, 0, 4, 0);
    }
}
