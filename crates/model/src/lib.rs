//! # ise-model — problem model for calibration scheduling
//!
//! This crate defines the data model for the *Integrated Stockpile
//! Evaluation* (ISE) problem of Fineman & Sheridan (SPAA 2015):
//! `n` jobs with release times, deadlines, and processing times must be
//! scheduled nonpreemptively on `m` identical machines so that every job runs
//! completely inside a *calibrated interval* of its machine, minimizing the
//! total number of calibrations.
//!
//! The model is deliberately exact: all times are integer *ticks*
//! ([`Time`]/[`Dur`]), so feasibility checking never involves floating-point
//! decisions. Schedules carry an optional refinement factor
//! ([`Schedule::time_scale`]) and speed augmentation ([`Schedule::speed`]) so
//! that the paper's machine-for-speed transformation (Theorem 14) can be
//! represented and validated exactly as well.
//!
//! The modules:
//! * [`time`] — integer tick time points and durations.
//! * [`job`] — jobs and job identifiers.
//! * [`instance`] — a full ISE problem instance (jobs + `m` + `T`).
//! * [`schedule`] — calibrations, placements, and complete schedules.
//! * [`mod@validate`] — the exact feasibility validator (ISE properties 1–4 and
//!   the TISE restriction).
//! * [`stats`] — summary statistics of schedules used by experiments.
//! * [`error`] — shared error type.

pub mod error;
pub mod instance;
pub mod job;
pub mod render;
pub mod schedule;
pub mod stats;
pub mod time;
pub mod transform;
pub mod validate;

pub use error::ModelError;
pub use instance::{Instance, InstanceBuilder};
pub use job::{Job, JobId};
pub use render::{render_gantt, RenderOptions};
pub use schedule::{Calibration, Placement, Schedule};
pub use stats::{MachineStats, ScheduleStats};
pub use time::{Dur, Time, TimeOverflow, MAX_INSTANCE_TICKS};
pub use transform::{normalize_origin, rescale_ticks, shift_schedule, shift_time};
pub use validate::{validate, validate_relaxed, validate_tise, ValidationError, ValidationReport};
