//! Instance transformations: time shifting and tick rescaling.
//!
//! The algorithms in this workspace operate on integer ticks. Real inputs
//! with rational times are handled by rescaling ticks up front
//! ([`rescale_ticks`]); instances anchored far from the origin can be
//! shifted ([`shift_time`]) to keep arithmetic comfortably inside `i64`.
//! Both transformations are exact bijections on feasible schedules:
//! shifting by `δ` maps a schedule with calibration/placement times `t` to
//! one with times `t + δ`, and rescaling by `k` maps `t` to `k·t` (with
//! `T' = k·T`), preserving the number of calibrations in both directions.

use crate::instance::Instance;
use crate::job::Job;
use crate::schedule::Schedule;
use crate::time::{Dur, Time};

/// Shift every release and deadline by `delta` ticks. The calibration
/// length and machine count are unchanged.
pub fn shift_time(instance: &Instance, delta: Dur) -> Instance {
    let jobs: Vec<Job> = instance
        .jobs()
        .iter()
        .map(|j| Job {
            release: j.release + delta,
            deadline: j.deadline + delta,
            ..*j
        })
        .collect();
    rebuild(instance, jobs, instance.calib_len())
}

/// Multiply every time quantity (releases, deadlines, processing times,
/// and `T`) by `factor >= 1`. Useful to express inputs with a coarser
/// original unit (e.g. quarter-hours) in ticks.
pub fn rescale_ticks(instance: &Instance, factor: i64) -> Instance {
    assert!(factor >= 1, "rescale factor must be >= 1");
    let jobs: Vec<Job> = instance
        .jobs()
        .iter()
        .map(|j| Job {
            release: j.release.scale(factor),
            deadline: j.deadline.scale(factor),
            proc: j.proc.scale(factor),
            ..*j
        })
        .collect();
    rebuild(instance, jobs, instance.calib_len().scale(factor))
}

/// Apply the same shift to a schedule so it matches a shifted instance.
pub fn shift_schedule(schedule: &Schedule, delta: Dur) -> Schedule {
    let mut out = schedule.clone();
    let scaled = Dur(delta.ticks() * schedule.time_scale);
    for c in &mut out.calibrations {
        c.start += scaled;
    }
    for p in &mut out.placements {
        p.start += scaled;
    }
    out
}

fn rebuild(original: &Instance, jobs: Vec<Job>, calib_len: Dur) -> Instance {
    let mut b = crate::instance::InstanceBuilder::new(original.machines(), calib_len.ticks());
    for j in &jobs {
        b.push(j.release.ticks(), j.deadline.ticks(), j.proc.ticks());
    }
    b.build()
        .expect("transformation preserves model invariants")
}

/// Normalize an instance so its earliest release is at time 0; returns the
/// shifted instance and the shift that was applied (add it back to
/// schedule times via [`shift_schedule`] with the negated value).
pub fn normalize_origin(instance: &Instance) -> (Instance, Dur) {
    let delta = Time::ZERO - instance.min_release();
    (shift_time(instance, delta), delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::validate::validate;

    fn inst() -> Instance {
        Instance::new([(5, 35, 4), (7, 30, 6)], 1, 10).unwrap()
    }

    fn sched() -> Schedule {
        let mut s = Schedule::new();
        s.calibrate(0, Time(7));
        s.place(JobId(0), 0, Time(7));
        s.place(JobId(1), 0, Time(11));
        s
    }

    #[test]
    fn shift_preserves_feasibility() {
        let (i, s) = (inst(), sched());
        validate(&i, &s).unwrap();
        let i2 = shift_time(&i, Dur(100));
        let s2 = shift_schedule(&s, Dur(100));
        validate(&i2, &s2).unwrap();
        assert_eq!(s2.num_calibrations(), s.num_calibrations());
        let i3 = shift_time(&i, Dur(-50));
        let s3 = shift_schedule(&s, Dur(-50));
        validate(&i3, &s3).unwrap();
    }

    #[test]
    fn rescale_preserves_feasibility_shape() {
        let i = inst();
        let i2 = rescale_ticks(&i, 4);
        assert_eq!(i2.calib_len(), Dur(40));
        assert_eq!(i2.job(JobId(0)).release, Time(20));
        assert_eq!(i2.job(JobId(0)).proc, Dur(16));
        // A rescaled schedule validates against the rescaled instance.
        let mut s2 = Schedule::new();
        s2.calibrate(0, Time(28));
        s2.place(JobId(0), 0, Time(28));
        s2.place(JobId(1), 0, Time(44));
        validate(&i2, &s2).unwrap();
    }

    #[test]
    fn normalize_origin_moves_min_release_to_zero() {
        let (i2, delta) = normalize_origin(&inst());
        assert_eq!(i2.min_release(), Time(0));
        assert_eq!(delta, Dur(-5));
        // Long/short classification is shift-invariant.
        assert_eq!(
            inst().partition_long_short().0.len(),
            i2.partition_long_short().0.len()
        );
    }

    #[test]
    fn shift_schedule_respects_time_scale() {
        let mut s = Schedule::with_augmentation(2, 2);
        s.calibrate(0, Time(10));
        let shifted = shift_schedule(&s, Dur(3));
        // 3 instance ticks = 6 schedule units at scale 2.
        assert_eq!(shifted.calibrations[0].start, Time(16));
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn rescale_rejects_zero() {
        rescale_ticks(&inst(), 0);
    }
}
