//! Exact feasibility validation of schedules.
//!
//! A feasible ISE schedule must satisfy (numbering follows the proof of
//! Lemma 15 in the paper):
//!
//! 1. every job is scheduled nonpreemptively within its window;
//! 2. jobs on the same machine do not overlap;
//! 3. every job's execution is contained in a single calibration on its
//!    machine;
//! 4. calibrations on the same machine do not overlap.
//!
//! Additionally every job must be placed exactly once, and for
//! speed-augmented schedules the scaled execution length must be integral.
//!
//! [`validate_tise`] additionally enforces the *TISE restriction*: the
//! calibration containing a job must lie completely inside the job's window
//! (`r_j <= t` and `t + T <= d_j`).
//!
//! All checks are integer comparisons — there is no floating point anywhere
//! in the feasibility decision.

use crate::instance::Instance;
use crate::job::JobId;
use crate::schedule::{MachineId, Schedule};
use crate::time::Time;
use std::collections::HashMap;
use std::fmt;

/// A reason a schedule is infeasible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A job has no placement.
    Unplaced { job: JobId },
    /// A job has more than one placement (the problem is nonpreemptive).
    DuplicatePlacement { job: JobId },
    /// A placement references a job id not in the instance.
    UnknownJob { job: JobId },
    /// `p_j * time_scale` is not divisible by `speed`, so the execution
    /// length is not representable in schedule units.
    InexactExecutionLength { job: JobId },
    /// The job starts before its release time.
    StartsBeforeRelease { job: JobId, start: Time },
    /// The job completes after its deadline.
    MissesDeadline { job: JobId, end: Time },
    /// The job's execution is not contained in any calibration on its
    /// machine (property 3).
    OutsideCalibration {
        job: JobId,
        machine: MachineId,
        start: Time,
    },
    /// Two jobs overlap on the same machine (property 2).
    JobsOverlap {
        first: JobId,
        second: JobId,
        machine: MachineId,
    },
    /// Two calibrations on the same machine overlap (property 4).
    CalibrationsOverlap {
        machine: MachineId,
        first: Time,
        second: Time,
    },
    /// TISE restriction violated: the containing calibration is not nested
    /// in the job's window.
    TiseViolation { job: JobId, calibration_start: Time },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Unplaced { job } => write!(f, "job {job} is not placed"),
            ValidationError::DuplicatePlacement { job } => {
                write!(f, "job {job} is placed more than once")
            }
            ValidationError::UnknownJob { job } => {
                write!(f, "placement references unknown job {job}")
            }
            ValidationError::InexactExecutionLength { job } => {
                write!(f, "job {job}: execution length is not integral at this speed/scale")
            }
            ValidationError::StartsBeforeRelease { job, start } => {
                write!(f, "job {job} starts at {start} before its (scaled) release")
            }
            ValidationError::MissesDeadline { job, end } => {
                write!(f, "job {job} completes at {end} after its (scaled) deadline")
            }
            ValidationError::OutsideCalibration { job, machine, start } => write!(
                f,
                "job {job} at time {start} on machine {machine} is not inside a calibration"
            ),
            ValidationError::JobsOverlap { first, second, machine } => {
                write!(f, "jobs {first} and {second} overlap on machine {machine}")
            }
            ValidationError::CalibrationsOverlap { machine, first, second } => write!(
                f,
                "calibrations at {first} and {second} overlap on machine {machine}"
            ),
            ValidationError::TiseViolation { job, calibration_start } => write!(
                f,
                "TISE: calibration at {calibration_start} containing job {job} is not nested in its window"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Everything the validator found, plus summary facts that experiments use.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// All violations found (empty iff the schedule is feasible).
    pub errors: Vec<ValidationError>,
    /// Number of calibrations in the schedule.
    pub calibrations: usize,
    /// Number of distinct machines used.
    pub machines: usize,
}

impl ValidationReport {
    /// True if no violations were found.
    pub fn is_feasible(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validate `schedule` against `instance` as a plain ISE schedule. Returns
/// `Ok(())` if feasible, otherwise the first violation found.
///
/// ```
/// use ise_model::{validate, Instance, JobId, Schedule, Time};
/// let inst = Instance::new([(0, 30, 4)], 1, 10).unwrap();
/// let mut s = Schedule::new();
/// s.calibrate(0, Time(0));
/// s.place(JobId(0), 0, Time(2));
/// assert!(validate(&inst, &s).is_ok());
/// s.placements[0].start = Time(8); // runs [8, 12): leaves the calibration
/// assert!(validate(&inst, &s).is_err());
/// ```
pub fn validate(instance: &Instance, schedule: &Schedule) -> Result<(), ValidationError> {
    let report = report_with(
        instance,
        schedule,
        Mode {
            tise: false,
            allow_overlap: false,
        },
    );
    match report.errors.into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Validate `schedule` against `instance` with the additional TISE
/// restriction (each containing calibration nested in its job's window).
pub fn validate_tise(instance: &Instance, schedule: &Schedule) -> Result<(), ValidationError> {
    let report = report_with(
        instance,
        schedule,
        Mode {
            tise: true,
            allow_overlap: false,
        },
    );
    match report.errors.into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Validate under the **relaxed** problem variant of the paper's footnote
/// 3: a machine may be recalibrated before its previous calibration ends
/// (property 4 is dropped; every job must still fit inside a *single*
/// calibration).
pub fn validate_relaxed(instance: &Instance, schedule: &Schedule) -> Result<(), ValidationError> {
    let report = report_with(
        instance,
        schedule,
        Mode {
            tise: false,
            allow_overlap: true,
        },
    );
    match report.errors.into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Validation mode flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mode {
    /// Additionally enforce the TISE restriction.
    pub tise: bool,
    /// Allow overlapping calibrations on a machine (footnote 3's relaxed
    /// problem variant).
    pub allow_overlap: bool,
}

/// Full validation, collecting every violation (strict variant).
pub fn report(instance: &Instance, schedule: &Schedule, tise: bool) -> ValidationReport {
    report_with(
        instance,
        schedule,
        Mode {
            tise,
            allow_overlap: false,
        },
    )
}

/// Full validation, collecting every violation.
pub fn report_with(instance: &Instance, schedule: &Schedule, mode: Mode) -> ValidationReport {
    let tise = mode.tise;
    let mut errors = Vec::new();
    let calib_len = schedule.calib_len_scaled(instance.calib_len());

    // --- Property 4: calibrations on a machine must not overlap (unless
    // the relaxed footnote-3 variant is being checked). ---
    let mut by_machine: HashMap<MachineId, Vec<Time>> = HashMap::new();
    for c in &schedule.calibrations {
        by_machine.entry(c.machine).or_default().push(c.start);
    }
    for (machine, starts) in by_machine.iter_mut() {
        starts.sort_unstable();
        if mode.allow_overlap {
            continue;
        }
        for w in starts.windows(2) {
            if w[1] - w[0] < calib_len {
                errors.push(ValidationError::CalibrationsOverlap {
                    machine: *machine,
                    first: w[0],
                    second: w[1],
                });
            }
        }
    }

    // --- Placement bookkeeping: exactly one placement per job. Job ids
    // need not be dense (restricted sub-instances keep their parent's
    // ids), so count by id. ---
    let by_id: HashMap<JobId, &crate::job::Job> =
        instance.jobs().iter().map(|j| (j.id, j)).collect();
    let mut seen: HashMap<JobId, usize> = HashMap::with_capacity(instance.len());
    for p in &schedule.placements {
        if by_id.contains_key(&p.job) {
            *seen.entry(p.job).or_insert(0) += 1;
        } else {
            errors.push(ValidationError::UnknownJob { job: p.job });
        }
    }
    for job in instance.jobs() {
        match seen.get(&job.id).copied().unwrap_or(0) {
            0 => errors.push(ValidationError::Unplaced { job: job.id }),
            1 => {}
            _ => errors.push(ValidationError::DuplicatePlacement { job: job.id }),
        }
    }

    // --- Properties 1 and 3 per placement. ---
    // Execution intervals per machine for the overlap check (property 2).
    let mut runs: HashMap<MachineId, Vec<(Time, Time, JobId)>> = HashMap::new();
    for p in &schedule.placements {
        let Some(&job) = by_id.get(&p.job) else {
            continue;
        };
        let Some(exec) = schedule.exec_len(job.proc) else {
            errors.push(ValidationError::InexactExecutionLength { job: p.job });
            continue;
        };
        let end = p.start + exec;
        let release = schedule.scale_time(job.release);
        let deadline = schedule.scale_time(job.deadline);
        if p.start < release {
            errors.push(ValidationError::StartsBeforeRelease {
                job: p.job,
                start: p.start,
            });
        }
        if end > deadline {
            errors.push(ValidationError::MissesDeadline { job: p.job, end });
        }
        // Property 3: containment in a *single* calibration on the same
        // machine. Any calibration starting in (start - T, start] is a
        // candidate; with overlapping calibrations allowed there may be
        // several, and containment in any one suffices.
        let containing = by_machine.get(&p.machine).and_then(|starts| {
            let hi = starts.partition_point(|&s| s <= p.start);
            let lo = starts.partition_point(|&s| s + calib_len <= p.start);
            starts[lo..hi]
                .iter()
                .rev()
                .copied()
                .find(|&cs| end <= cs + calib_len)
        });
        match containing {
            Some(cs) if end <= cs + calib_len => {
                if tise {
                    // TISE restriction: calibration nested in the window.
                    if cs < release || cs + calib_len > deadline {
                        errors.push(ValidationError::TiseViolation {
                            job: p.job,
                            calibration_start: cs,
                        });
                    }
                }
            }
            _ => errors.push(ValidationError::OutsideCalibration {
                job: p.job,
                machine: p.machine,
                start: p.start,
            }),
        }
        runs.entry(p.machine)
            .or_default()
            .push((p.start, end, p.job));
    }

    // --- Property 2: executions on a machine must not overlap. ---
    for (machine, intervals) in runs.iter_mut() {
        intervals.sort_unstable_by_key(|&(s, e, j)| (s, e, j));
        for w in intervals.windows(2) {
            let (_, end0, id0) = w[0];
            let (start1, _, id1) = w[1];
            if start1 < end0 {
                errors.push(ValidationError::JobsOverlap {
                    first: id0,
                    second: id1,
                    machine: *machine,
                });
            }
        }
    }

    ValidationReport {
        errors,
        calibrations: schedule.num_calibrations(),
        machines: schedule.machines_used(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn inst() -> Instance {
        // T = 10, one machine, two jobs.
        Instance::new([(0, 30, 4), (2, 25, 6)], 1, 10).unwrap()
    }

    fn good_schedule() -> Schedule {
        let mut s = Schedule::new();
        s.calibrate(0, Time(2));
        s.place(JobId(0), 0, Time(2));
        s.place(JobId(1), 0, Time(6));
        s
    }

    #[test]
    fn accepts_feasible_schedule() {
        assert_eq!(validate(&inst(), &good_schedule()), Ok(()));
        // Calibration [2,12) nested in both windows, so TISE holds too.
        assert_eq!(validate_tise(&inst(), &good_schedule()), Ok(()));
    }

    #[test]
    fn rejects_unplaced_job() {
        let mut s = good_schedule();
        s.placements.pop();
        assert_eq!(
            validate(&inst(), &s),
            Err(ValidationError::Unplaced { job: JobId(1) })
        );
    }

    #[test]
    fn rejects_duplicate_placement() {
        let mut s = good_schedule();
        s.place(JobId(0), 0, Time(20)); // second copy — also outside calibration
        let rep = report(&inst(), &s, false);
        assert!(rep
            .errors
            .contains(&ValidationError::DuplicatePlacement { job: JobId(0) }));
    }

    #[test]
    fn rejects_start_before_release() {
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.place(JobId(0), 0, Time(0));
        s.place(JobId(1), 0, Time(1)); // release is 2
        let rep = report(&inst(), &s, false);
        assert!(rep.errors.contains(&ValidationError::StartsBeforeRelease {
            job: JobId(1),
            start: Time(1)
        }));
    }

    #[test]
    fn rejects_deadline_miss() {
        // Job 1 has deadline 25.
        let mut s = Schedule::new();
        s.calibrate(0, Time(2));
        s.calibrate(0, Time(20));
        s.place(JobId(0), 0, Time(2));
        s.place(JobId(1), 0, Time(21)); // ends at 27 > 25
        let rep = report(&inst(), &s, false);
        assert!(rep.errors.contains(&ValidationError::MissesDeadline {
            job: JobId(1),
            end: Time(27)
        }));
    }

    #[test]
    fn rejects_job_outside_calibration() {
        let mut s = good_schedule();
        s.placements[1].start = Time(9); // runs [9,15) but calibration ends at 12
        let rep = report(&inst(), &s, false);
        assert!(rep.errors.contains(&ValidationError::OutsideCalibration {
            job: JobId(1),
            machine: 0,
            start: Time(9),
        }));
    }

    #[test]
    fn rejects_job_with_no_calibration_at_all() {
        let mut s = good_schedule();
        s.calibrations.clear();
        let rep = report(&inst(), &s, false);
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::OutsideCalibration { .. })));
    }

    #[test]
    fn rejects_overlapping_jobs() {
        let mut s = good_schedule();
        s.placements[1].start = Time(4); // overlaps job 0's [2,6)
        let rep = report(&inst(), &s, false);
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::JobsOverlap { .. })));
    }

    #[test]
    fn rejects_overlapping_calibrations() {
        let mut s = good_schedule();
        s.calibrate(0, Time(5));
        let rep = report(&inst(), &s, false);
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::CalibrationsOverlap { machine: 0, .. })));
    }

    #[test]
    fn back_to_back_calibrations_are_fine() {
        let mut s = good_schedule();
        s.calibrate(0, Time(12)); // exactly T after the first
        assert_eq!(validate(&inst(), &s), Ok(()));
    }

    #[test]
    fn tise_rejects_partially_overlapping_calibration() {
        // Calibration [0, 10); job 1's window starts at 2, so TISE fails for
        // job 1 even though the plain ISE schedule is fine.
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.place(JobId(0), 0, Time(0));
        s.place(JobId(1), 0, Time(4));
        assert_eq!(validate(&inst(), &s), Ok(()));
        assert_eq!(
            validate_tise(&inst(), &s),
            Err(ValidationError::TiseViolation {
                job: JobId(1),
                calibration_start: Time(0)
            })
        );
    }

    #[test]
    fn speed_augmented_schedule_validates_exactly() {
        // T=10, speed 2, scale 2: calibration spans 20 schedule units; a
        // 4-tick job occupies 4 units.
        let inst = Instance::new([(0, 30, 4)], 1, 10).unwrap();
        let mut s = Schedule::with_augmentation(2, 2);
        s.calibrate(0, Time(0));
        s.place(JobId(0), 0, Time(16)); // ends at 20 == calibration end, deadline 60
        assert_eq!(validate(&inst, &s), Ok(()));
        s.placements[0].start = Time(17); // ends at 21 > calibration end
        assert!(validate(&inst, &s).is_err());
    }

    #[test]
    fn inexact_execution_length_is_an_error() {
        let inst = Instance::new([(0, 30, 3)], 1, 10).unwrap();
        let mut s = Schedule::with_augmentation(1, 2); // 3/2 units: inexact
        s.calibrate(0, Time(0));
        s.place(JobId(0), 0, Time(0));
        assert_eq!(
            validate(&inst, &s),
            Err(ValidationError::InexactExecutionLength { job: JobId(0) })
        );
    }

    #[test]
    fn unknown_job_is_reported() {
        let mut s = good_schedule();
        s.place(JobId(9), 0, Time(2));
        let rep = report(&inst(), &s, false);
        assert!(rep
            .errors
            .contains(&ValidationError::UnknownJob { job: JobId(9) }));
    }

    #[test]
    fn relaxed_mode_allows_overlapping_calibrations() {
        // Two overlapping calibrations on one machine: the strict (paper
        // main-text) variant rejects, the footnote-3 variant accepts, and
        // each job must still sit inside one single calibration.
        let inst = Instance::new([(0, 30, 4), (2, 28, 6)], 1, 10).unwrap();
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.calibrate(0, Time(4)); // overlaps [0, 10)
        s.place(JobId(0), 0, Time(0));
        s.place(JobId(1), 0, Time(6)); // [6, 12) ⊆ [4, 14): needs the 2nd
        assert!(matches!(
            validate(&inst, &s),
            Err(ValidationError::CalibrationsOverlap { .. })
        ));
        assert_eq!(crate::validate::validate_relaxed(&inst, &s), Ok(()));
        // A job spanning both calibrations but inside neither is still
        // rejected in relaxed mode.
        let mut bad = s.clone();
        bad.placements[1].start = Time(8); // [8, 14): ends past both? [4,14) covers! use 9
        bad.placements[1].start = Time(9); // [9, 15): past 14
        assert!(matches!(
            crate::validate::validate_relaxed(&inst, &bad),
            Err(ValidationError::OutsideCalibration { .. })
        ));
    }

    #[test]
    fn restricted_instances_with_sparse_ids_validate() {
        // Sub-instances keep their parent's job ids; the validator must
        // match placements by id, not by index.
        let parent = Instance::new([(0, 30, 4), (2, 25, 6), (50, 80, 5)], 1, 10).unwrap();
        let sub = parent.restrict(vec![*parent.job(JobId(2))], 1);
        let mut s = Schedule::new();
        s.calibrate(0, Time(50));
        s.place(JobId(2), 0, Time(50));
        assert_eq!(validate(&sub, &s), Ok(()));
        // And an unplaced sparse id is still reported.
        s.placements.clear();
        assert_eq!(
            validate(&sub, &s),
            Err(ValidationError::Unplaced { job: JobId(2) })
        );
    }

    #[test]
    fn report_counts_resources() {
        let rep = report(&inst(), &good_schedule(), false);
        assert!(rep.is_feasible());
        assert_eq!(rep.calibrations, 1);
        assert_eq!(rep.machines, 1);
    }
}
