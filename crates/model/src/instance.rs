//! A complete ISE problem instance.

use crate::error::ModelError;
use crate::job::{Job, JobId};
use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// An ISE problem instance: a set of jobs, a number of identical machines
/// `m`, and a calibration length `T`. In standard scheduling notation this is
/// `P | r_j, d_j | #calibrations`.
///
/// Invariants (enforced by [`Instance::new`] / [`InstanceBuilder`]):
/// * `T > 0`, `m > 0`;
/// * for every job: `p_j > 0`, `p_j <= T`, and `r_j + p_j <= d_j`;
/// * job ids equal their index in [`Instance::jobs`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    jobs: Vec<Job>,
    machines: usize,
    calib_len: Dur,
}

impl Instance {
    /// Build an instance from `(release, deadline, proc)` triples.
    ///
    /// ```
    /// use ise_model::Instance;
    /// // Two jobs, one machine, calibration length T = 10.
    /// let inst = Instance::new([(0, 30, 4), (5, 40, 7)], 1, 10).unwrap();
    /// assert_eq!(inst.len(), 2);
    /// assert_eq!(inst.total_work().ticks(), 11);
    /// // Ill-formed inputs are rejected, not clamped:
    /// assert!(Instance::new([(0, 5, 6)], 1, 10).is_err()); // window < proc
    /// ```
    pub fn new(
        triples: impl IntoIterator<Item = (i64, i64, i64)>,
        machines: usize,
        calib_len: i64,
    ) -> Result<Instance, ModelError> {
        let mut b = InstanceBuilder::new(machines, calib_len);
        for (r, d, p) in triples {
            b.push(r, d, p);
        }
        b.build()
    }

    /// The jobs, indexed by [`JobId`].
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Look up a job by id. Ids equal indices for instances straight from
    /// the builder; restricted sub-instances ([`Instance::restrict`]) keep
    /// their parent's (sparse) ids, so a fallback scan covers that case.
    /// Panics if the id is not present.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        if let Some(j) = self.jobs.get(id.index()) {
            if j.id == id {
                return j;
            }
        }
        self.jobs
            .iter()
            .find(|j| j.id == id)
            .expect("job id present in instance")
    }

    /// Look up a job by id, returning `None` for unknown ids.
    pub fn find_job(&self, id: JobId) -> Option<&Job> {
        if let Some(j) = self.jobs.get(id.index()) {
            if j.id == id {
                return Some(j);
            }
        }
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the instance has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of machines `m`.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Calibration length `T`.
    #[inline]
    pub fn calib_len(&self) -> Dur {
        self.calib_len
    }

    /// Earliest release time, or `Time::ZERO` for an empty instance.
    pub fn min_release(&self) -> Time {
        self.jobs
            .iter()
            .map(|j| j.release)
            .min()
            .unwrap_or(Time::ZERO)
    }

    /// Latest deadline, or `Time::ZERO` for an empty instance.
    pub fn max_deadline(&self) -> Time {
        self.jobs
            .iter()
            .map(|j| j.deadline)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Total processing time of all jobs.
    pub fn total_work(&self) -> Dur {
        self.jobs.iter().map(|j| j.proc).sum()
    }

    /// Partition into (long-window, short-window) jobs per Definition 1 of
    /// the paper: long iff `d_j - r_j >= 2T`.
    pub fn partition_long_short(&self) -> (Vec<Job>, Vec<Job>) {
        self.jobs
            .iter()
            .copied()
            .partition(|j| j.is_long(self.calib_len))
    }

    /// True if every job is long-window.
    pub fn all_long(&self) -> bool {
        self.jobs.iter().all(|j| j.is_long(self.calib_len))
    }

    /// True if every job is short-window.
    pub fn all_short(&self) -> bool {
        self.jobs.iter().all(|j| j.is_short(self.calib_len))
    }

    /// True if every job has unit processing time (the special case covered
    /// by Bender et al. 2013).
    pub fn all_unit(&self) -> bool {
        self.jobs.iter().all(|j| j.proc == Dur(1))
    }

    /// A copy of this instance with a different machine count. Used by the
    /// algorithms when granting machine augmentation (e.g. `m' = 3m`).
    pub fn with_machines(&self, machines: usize) -> Instance {
        assert!(machines > 0);
        Instance {
            jobs: self.jobs.clone(),
            machines,
            calib_len: self.calib_len,
        }
    }

    /// A new instance over a subset of this instance's jobs, preserving
    /// their original ids. Used when splitting into long/short sub-problems
    /// and when slicing time intervals (Algorithm 4).
    pub fn restrict(&self, jobs: Vec<Job>, machines: usize) -> Instance {
        assert!(machines > 0);
        debug_assert!(
            jobs.iter().all(|j| self.jobs.contains(j)),
            "restrict: jobs must come from this instance"
        );
        Instance {
            jobs,
            machines,
            calib_len: self.calib_len,
        }
    }

    /// Trivial per-instance lower bound on the number of calibrations: every
    /// calibration supplies at most `T` units of work, so at least
    /// `ceil(total_work / T)` calibrations are needed (and at least 1 if any
    /// job exists).
    pub fn work_lower_bound(&self) -> u64 {
        if self.jobs.is_empty() {
            return 0;
        }
        (self.total_work().div_ceil(self.calib_len) as u64).max(1)
    }
}

/// Fallible builder for [`Instance`].
#[derive(Clone, Debug)]
pub struct InstanceBuilder {
    jobs: Vec<(i64, i64, i64)>,
    machines: usize,
    calib_len: i64,
}

impl InstanceBuilder {
    /// Start a builder with `m` machines and calibration length `T`.
    pub fn new(machines: usize, calib_len: i64) -> InstanceBuilder {
        InstanceBuilder {
            jobs: Vec::new(),
            machines,
            calib_len,
        }
    }

    /// Add a job with release `r`, deadline `d`, and processing time `p`.
    pub fn push(&mut self, release: i64, deadline: i64, proc: i64) -> &mut Self {
        self.jobs.push((release, deadline, proc));
        self
    }

    /// Validate and build the instance.
    pub fn build(&self) -> Result<Instance, ModelError> {
        if self.calib_len <= 0 {
            return Err(ModelError::NonPositiveCalibrationLength {
                calib_len: self.calib_len,
            });
        }
        if self.machines == 0 {
            return Err(ModelError::NoMachines);
        }
        // Magnitude validation runs before any arithmetic on the inputs:
        // it both guards the `r + p > d` check below against wrapping and
        // guarantees every validated instance survives the Lemma 13
        // speed-36 refinement without overflowing i64.
        let in_range =
            |v: i64| (-crate::MAX_INSTANCE_TICKS..=crate::MAX_INSTANCE_TICKS).contains(&v);
        if !in_range(self.calib_len) {
            return Err(ModelError::HorizonOverflow {
                job: None,
                ticks: self.calib_len,
            });
        }
        let mut jobs = Vec::with_capacity(self.jobs.len());
        for (i, &(r, d, p)) in self.jobs.iter().enumerate() {
            for v in [r, d, p] {
                if !in_range(v) {
                    return Err(ModelError::HorizonOverflow {
                        job: Some(i),
                        ticks: v,
                    });
                }
            }
            if p <= 0 {
                return Err(ModelError::NonPositiveProcessingTime { job: i });
            }
            if p > self.calib_len {
                return Err(ModelError::ProcessingTimeExceedsCalibration {
                    job: i,
                    proc: p,
                    calib_len: self.calib_len,
                });
            }
            if r + p > d {
                return Err(ModelError::WindowTooSmall { job: i });
            }
            jobs.push(Job {
                id: JobId(i as u32),
                release: Time(r),
                deadline: Time(d),
                proc: Dur(p),
            });
        }
        Ok(Instance {
            jobs,
            machines: self.machines,
            calib_len: Dur(self.calib_len),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_instance() {
        let inst = Instance::new([(0, 20, 5), (3, 40, 10)], 2, 10).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.machines(), 2);
        assert_eq!(inst.calib_len(), Dur(10));
        assert_eq!(inst.job(JobId(1)).proc, Dur(10));
        assert_eq!(inst.total_work(), Dur(15));
        assert_eq!(inst.min_release(), Time(0));
        assert_eq!(inst.max_deadline(), Time(40));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            Instance::new([(0, 20, 5)], 0, 10).unwrap_err(),
            ModelError::NoMachines
        );
        assert_eq!(
            Instance::new([(0, 20, 5)], 1, 0).unwrap_err(),
            ModelError::NonPositiveCalibrationLength { calib_len: 0 }
        );
        assert!(matches!(
            Instance::new([(0, 20, 11)], 1, 10).unwrap_err(),
            ModelError::ProcessingTimeExceedsCalibration { job: 0, .. }
        ));
        assert!(matches!(
            Instance::new([(0, 4, 5)], 1, 10).unwrap_err(),
            ModelError::WindowTooSmall { job: 0 }
        ));
        assert!(matches!(
            Instance::new([(0, 4, 0)], 1, 10).unwrap_err(),
            ModelError::NonPositiveProcessingTime { job: 0 }
        ));
    }

    #[test]
    fn rejects_times_beyond_the_representable_horizon() {
        // Pre-validation, `r + p > d` wrapped in release for inputs near
        // i64::MAX; now every out-of-range magnitude is rejected before
        // any arithmetic runs.
        let big = crate::MAX_INSTANCE_TICKS + 1;
        assert_eq!(
            Instance::new([(0, big, 5)], 1, 10).unwrap_err(),
            ModelError::HorizonOverflow {
                job: Some(0),
                ticks: big
            }
        );
        assert_eq!(
            Instance::new([(-big, 20, 5)], 1, 10).unwrap_err(),
            ModelError::HorizonOverflow {
                job: Some(0),
                ticks: -big
            }
        );
        assert_eq!(
            Instance::new([(0, 20, 5)], 1, big).unwrap_err(),
            ModelError::HorizonOverflow {
                job: None,
                ticks: big
            }
        );
        // The classic wrap witness: r near i64::MAX makes the window check
        // `r + p > d` overflow without the magnitude guard.
        assert!(matches!(
            Instance::new([(i64::MAX - 2, i64::MAX - 1, 5)], 1, 10).unwrap_err(),
            ModelError::HorizonOverflow { job: Some(0), .. }
        ));
        // The boundary itself is legal.
        let edge = crate::MAX_INSTANCE_TICKS;
        assert!(Instance::new([(edge - 10, edge, 5)], 1, 10).is_ok());
    }

    #[test]
    fn partitions_by_window_length() {
        // T = 10: long needs window >= 20.
        let inst = Instance::new([(0, 20, 5), (0, 19, 5), (5, 26, 3)], 1, 10).unwrap();
        let (long, short) = inst.partition_long_short();
        assert_eq!(long.iter().map(|j| j.id.0).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(short.iter().map(|j| j.id.0).collect::<Vec<_>>(), vec![1]);
        assert!(!inst.all_long());
        assert!(!inst.all_short());
    }

    #[test]
    fn work_lower_bound_rounds_up() {
        let inst = Instance::new([(0, 40, 7), (0, 40, 7), (0, 40, 7)], 1, 10).unwrap();
        // 21 units of work / T=10 => at least 3 calibrations.
        assert_eq!(inst.work_lower_bound(), 3);
        let single = Instance::new([(0, 40, 1)], 1, 10).unwrap();
        assert_eq!(single.work_lower_bound(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let inst = Instance::new([(0, 20, 5), (3, 40, 10)], 2, 10).unwrap();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn restrict_preserves_ids() {
        let inst = Instance::new([(0, 20, 5), (3, 40, 10), (0, 25, 2)], 2, 10).unwrap();
        let sub = inst.restrict(vec![*inst.job(JobId(2)), *inst.job(JobId(0))], 1);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.jobs()[0].id, JobId(2));
        assert_eq!(sub.machines(), 1);
    }
}
