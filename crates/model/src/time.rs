//! Integer-tick time points and durations.
//!
//! The paper allows release times, deadlines, and processing times to be
//! arbitrary (rational) numbers. We represent time as a signed 64-bit count
//! of *ticks*; any rational input can be scaled to ticks up front. Using
//! integers keeps every feasibility comparison in the validator exact.
//!
//! [`Time`] is a point on the timeline; [`Dur`] is a length of time. The two
//! are distinct newtypes so that nonsensical arithmetic (adding two time
//! points, for example) is rejected at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// Largest tick magnitude a validated instance may contain. The Lemma 13
/// speed transform refines ticks by up to `2c = 36` (Theorem 14 fixes
/// `c = 18`), so bounding every release, deadline, processing time, and
/// calibration length by `i64::MAX / 36` keeps the whole pipeline inside
/// `i64` without per-operation overflow handling on validated data.
pub const MAX_INSTANCE_TICKS: i64 = i64::MAX / 36;

/// Time arithmetic left the `i64` tick range. Returned by the fallible
/// entry points ([`Time::try_scale`], [`Dur::try_scale`],
/// [`Time::checked_add`], …) so API boundaries can reject hostile
/// magnitudes instead of panicking; the operator impls (`+`, `-`, `*`)
/// treat overflow as a caller bug and panic deterministically in every
/// build profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeOverflow {
    /// The operation that overflowed.
    pub op: &'static str,
}

impl fmt::Display for TimeOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "time arithmetic overflowed the i64 tick range in {}",
            self.op
        )
    }
}

impl std::error::Error for TimeOverflow {}

/// A point in time, measured in integer ticks from an arbitrary origin.
/// Negative times are legal (the paper's Lemma 2 construction shifts
/// calibrations by `-T`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub i64);

/// A duration, measured in integer ticks. Durations may be negative as an
/// intermediate value (e.g. `a - b` of two times), but processing times and
/// calibration lengths are always positive.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Dur(pub i64);

impl Time {
    /// The origin (tick 0).
    pub const ZERO: Time = Time(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> i64 {
        self.0
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Multiply the tick count by an integer refinement factor. Used when
    /// converting a schedule to a finer time scale (Theorem 14). Panics on
    /// overflow; use [`Time::try_scale`] where the factor or the tick
    /// count is not already bounded by validation.
    #[inline]
    pub fn scale(self, factor: i64) -> Time {
        self.try_scale(factor).expect("time scale overflow")
    }

    /// Fallible [`Time::scale`]: `Err` instead of a panic on overflow.
    #[inline]
    pub fn try_scale(self, factor: i64) -> Result<Time, TimeOverflow> {
        self.0
            .checked_mul(factor)
            .map(Time)
            .ok_or(TimeOverflow { op: "Time::scale" })
    }

    /// Overflow-checked `self + rhs`.
    #[inline]
    pub fn checked_add(self, rhs: Dur) -> Result<Time, TimeOverflow> {
        self.0
            .checked_add(rhs.0)
            .map(Time)
            .ok_or(TimeOverflow { op: "Time + Dur" })
    }

    /// Overflow-checked `self - rhs`.
    #[inline]
    pub fn checked_sub(self, rhs: Dur) -> Result<Time, TimeOverflow> {
        self.0
            .checked_sub(rhs.0)
            .map(Time)
            .ok_or(TimeOverflow { op: "Time - Dur" })
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> i64 {
        self.0
    }

    /// True if strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Multiply by an integer refinement factor (see [`Time::scale`]).
    /// Panics on overflow; use [`Dur::try_scale`] where the factor or the
    /// tick count is not already bounded by validation.
    #[inline]
    pub fn scale(self, factor: i64) -> Dur {
        self.try_scale(factor).expect("duration scale overflow")
    }

    /// Fallible [`Dur::scale`]: `Err` instead of a panic on overflow.
    #[inline]
    pub fn try_scale(self, factor: i64) -> Result<Dur, TimeOverflow> {
        self.0
            .checked_mul(factor)
            .map(Dur)
            .ok_or(TimeOverflow { op: "Dur::scale" })
    }

    /// Overflow-checked `self + rhs`.
    #[inline]
    pub fn checked_add(self, rhs: Dur) -> Result<Dur, TimeOverflow> {
        self.0
            .checked_add(rhs.0)
            .map(Dur)
            .ok_or(TimeOverflow { op: "Dur + Dur" })
    }

    /// Ceiling division by another duration: the least `k` with
    /// `k * other >= self`. Used by work-based lower bounds. Exact for
    /// every nonnegative `self`, including values near `i64::MAX` (no
    /// additive `+ other - 1` pre-step that could wrap).
    #[inline]
    pub fn div_ceil(self, other: Dur) -> i64 {
        assert!(other.0 > 0, "division by non-positive duration");
        debug_assert!(self.0 >= 0, "div_ceil on negative duration");
        self.0.div_euclid(other.0) + (self.0.rem_euclid(other.0) != 0) as i64
    }
}

// The operator impls use checked arithmetic unconditionally: raw `+`/`-`
// panic only under debug assertions and *silently wrap in release*, which
// corrupts schedules instead of failing. The distinctive panic message
// ("the i64 tick range") separates these guards from the compiler's own
// overflow panics in tests.

#[inline]
fn guarded(v: Option<i64>, op: &'static str) -> i64 {
    match v {
        Some(v) => v,
        None => panic!("{op} overflowed the i64 tick range"),
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(guarded(self.0.checked_add(rhs.0), "Time + Dur"))
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(guarded(self.0.checked_sub(rhs.0), "Time - Dur"))
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(guarded(self.0.checked_sub(rhs.0), "Time - Time"))
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl SubAssign<Dur> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(guarded(self.0.checked_add(rhs.0), "Dur + Dur"))
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(guarded(self.0.checked_sub(rhs.0), "Dur - Dur"))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: i64) -> Dur {
        Dur(guarded(self.0.checked_mul(rhs), "Dur * i64"))
    }
}

impl Div<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: i64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Rem<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn rem(self, rhs: Dur) -> Dur {
        Dur(self.0.rem_euclid(rhs.0))
    }
}

impl Neg for Dur {
    type Output = Dur;
    #[inline]
    fn neg(self) -> Dur {
        Dur(-self.0)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_dur_arithmetic() {
        let t = Time(10);
        let d = Dur(4);
        assert_eq!(t + d, Time(14));
        assert_eq!(t - d, Time(6));
        assert_eq!(Time(14) - Time(10), Dur(4));
        assert_eq!(d + Dur(1), Dur(5));
        assert_eq!(d * 3, Dur(12));
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        assert!(Dur(3) > Dur(-1));
        assert_eq!(Time(5).max(Time(3)), Time(5));
        assert_eq!(Time(5).min(Time(3)), Time(3));
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(Dur(10).div_ceil(Dur(3)), 4);
        assert_eq!(Dur(9).div_ceil(Dur(3)), 3);
        assert_eq!(Dur(0).div_ceil(Dur(3)), 0);
        assert_eq!(Dur(1).div_ceil(Dur(3)), 1);
    }

    #[test]
    fn scaling_refines_ticks() {
        assert_eq!(Time(7).scale(4), Time(28));
        assert_eq!(Dur(-3).scale(2), Dur(-6));
    }

    #[test]
    fn negative_times_are_legal() {
        let t = Time(0) - Dur(5);
        assert_eq!(t, Time(-5));
        assert!(t < Time::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur(1), Dur(2), Dur(3)].into_iter().sum();
        assert_eq!(total, Dur(6));
    }

    #[test]
    #[should_panic(expected = "division by non-positive duration")]
    fn div_ceil_rejects_zero_divisor() {
        let _ = Dur(1).div_ceil(Dur(0));
    }

    // ---- overflow regressions -------------------------------------------
    // Pre-fix, each of these either wrapped silently in release or
    // panicked with the compiler's "attempt to … with overflow" message
    // under `-C overflow-checks=on`; the expected strings below only match
    // the post-fix behavior.

    #[test]
    fn div_ceil_is_exact_near_i64_max() {
        // The old `(self + other - 1)` pre-step wrapped here even though
        // the quotient is representable.
        assert_eq!(
            Dur(i64::MAX - 10).div_ceil(Dur(1000)),
            (i64::MAX - 10) / 1000 + 1
        );
        assert_eq!(Dur(i64::MAX).div_ceil(Dur(1)), i64::MAX);
        assert_eq!(Dur(i64::MAX).div_ceil(Dur(i64::MAX)), 1);
        assert_eq!(Dur(i64::MAX - 1).div_ceil(Dur(i64::MAX)), 1);
    }

    #[test]
    #[should_panic(expected = "Time + Dur overflowed the i64 tick range")]
    fn time_add_overflow_panics_deterministically() {
        let _ = Time(i64::MAX) + Dur(1);
    }

    #[test]
    #[should_panic(expected = "Time - Dur overflowed the i64 tick range")]
    fn time_sub_overflow_panics_deterministically() {
        let _ = Time(i64::MIN) - Dur(1);
    }

    #[test]
    #[should_panic(expected = "Dur + Dur overflowed the i64 tick range")]
    fn dur_sum_overflow_panics_deterministically() {
        let _: Dur = [Dur(i64::MAX), Dur(i64::MAX)].into_iter().sum();
    }

    #[test]
    #[should_panic(expected = "Dur * i64 overflowed the i64 tick range")]
    fn dur_mul_overflow_panics_deterministically() {
        let _ = Dur(i64::MAX / 2) * 3;
    }

    #[test]
    fn try_scale_reports_overflow_instead_of_panicking() {
        assert_eq!(Time(7).try_scale(4), Ok(Time(28)));
        assert_eq!(
            Time(MAX_INSTANCE_TICKS + 1).try_scale(36),
            Err(TimeOverflow { op: "Time::scale" })
        );
        assert_eq!(Dur(-3).try_scale(2), Ok(Dur(-6)));
        assert_eq!(
            Dur(i64::MAX).try_scale(2),
            Err(TimeOverflow { op: "Dur::scale" })
        );
        // Everything a validated instance can contain survives the
        // speed-36 refinement.
        assert!(Time(MAX_INSTANCE_TICKS).try_scale(36).is_ok());
        assert!(Time(-MAX_INSTANCE_TICKS).try_scale(36).is_ok());
    }

    #[test]
    fn checked_ops_reject_overflow() {
        assert_eq!(Time(1).checked_add(Dur(2)), Ok(Time(3)));
        assert!(Time(i64::MAX).checked_add(Dur(1)).is_err());
        assert!(Time(i64::MIN).checked_sub(Dur(1)).is_err());
        assert!(Dur(i64::MAX).checked_add(Dur(1)).is_err());
    }
}
