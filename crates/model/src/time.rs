//! Integer-tick time points and durations.
//!
//! The paper allows release times, deadlines, and processing times to be
//! arbitrary (rational) numbers. We represent time as a signed 64-bit count
//! of *ticks*; any rational input can be scaled to ticks up front. Using
//! integers keeps every feasibility comparison in the validator exact.
//!
//! [`Time`] is a point on the timeline; [`Dur`] is a length of time. The two
//! are distinct newtypes so that nonsensical arithmetic (adding two time
//! points, for example) is rejected at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// A point in time, measured in integer ticks from an arbitrary origin.
/// Negative times are legal (the paper's Lemma 2 construction shifts
/// calibrations by `-T`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub i64);

/// A duration, measured in integer ticks. Durations may be negative as an
/// intermediate value (e.g. `a - b` of two times), but processing times and
/// calibration lengths are always positive.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Dur(pub i64);

impl Time {
    /// The origin (tick 0).
    pub const ZERO: Time = Time(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> i64 {
        self.0
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Multiply the tick count by an integer refinement factor. Used when
    /// converting a schedule to a finer time scale (Theorem 14).
    #[inline]
    pub fn scale(self, factor: i64) -> Time {
        Time(self.0.checked_mul(factor).expect("time scale overflow"))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> i64 {
        self.0
    }

    /// True if strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Multiply by an integer refinement factor (see [`Time::scale`]).
    #[inline]
    pub fn scale(self, factor: i64) -> Dur {
        Dur(self.0.checked_mul(factor).expect("duration scale overflow"))
    }

    /// Ceiling division by another duration: the least `k` with
    /// `k * other >= self`. Used by work-based lower bounds.
    #[inline]
    pub fn div_ceil(self, other: Dur) -> i64 {
        assert!(other.0 > 0, "division by non-positive duration");
        debug_assert!(self.0 >= 0, "div_ceil on negative duration");
        (self.0 + other.0 - 1).div_euclid(other.0)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl SubAssign<Dur> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: i64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: i64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Rem<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn rem(self, rhs: Dur) -> Dur {
        Dur(self.0.rem_euclid(rhs.0))
    }
}

impl Neg for Dur {
    type Output = Dur;
    #[inline]
    fn neg(self) -> Dur {
        Dur(-self.0)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_dur_arithmetic() {
        let t = Time(10);
        let d = Dur(4);
        assert_eq!(t + d, Time(14));
        assert_eq!(t - d, Time(6));
        assert_eq!(Time(14) - Time(10), Dur(4));
        assert_eq!(d + Dur(1), Dur(5));
        assert_eq!(d * 3, Dur(12));
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        assert!(Dur(3) > Dur(-1));
        assert_eq!(Time(5).max(Time(3)), Time(5));
        assert_eq!(Time(5).min(Time(3)), Time(3));
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(Dur(10).div_ceil(Dur(3)), 4);
        assert_eq!(Dur(9).div_ceil(Dur(3)), 3);
        assert_eq!(Dur(0).div_ceil(Dur(3)), 0);
        assert_eq!(Dur(1).div_ceil(Dur(3)), 1);
    }

    #[test]
    fn scaling_refines_ticks() {
        assert_eq!(Time(7).scale(4), Time(28));
        assert_eq!(Dur(-3).scale(2), Dur(-6));
    }

    #[test]
    fn negative_times_are_legal() {
        let t = Time(0) - Dur(5);
        assert_eq!(t, Time(-5));
        assert!(t < Time::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur(1), Dur(2), Dur(3)].into_iter().sum();
        assert_eq!(total, Dur(6));
    }

    #[test]
    #[should_panic(expected = "division by non-positive duration")]
    fn div_ceil_rejects_zero_divisor() {
        let _ = Dur(1).div_ceil(Dur(0));
    }
}
