//! ASCII rendering of schedules — a Gantt-style timeline per machine.
//!
//! Intended for examples, debugging, and experiment reports. The renderer
//! is exact about interval endpoints (each character cell covers a
//! half-open tick range) and degrades gracefully for long horizons by
//! scaling ticks per cell.
//!
//! ```text
//! machine 0 |[====j0====j1--]    [==j3------]   |
//! machine 1 |   [j2========]                    |
//!            0        10        20        30
//! ```
//!
//! `[` marks a calibration start, `=`/`-` alternate per job execution, and
//! spaces are idle/uncalibrated time.

use crate::instance::Instance;
use crate::schedule::Schedule;
#[cfg(test)]
use crate::time::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct RenderOptions {
    /// Maximum number of character cells for the timeline body; longer
    /// horizons are scaled down.
    pub max_width: usize,
    /// Label jobs inside their bars when space permits.
    pub label_jobs: bool,
}

impl Default for RenderOptions {
    fn default() -> RenderOptions {
        RenderOptions {
            max_width: 96,
            label_jobs: true,
        }
    }
}

/// Render `schedule` against `instance` as an ASCII Gantt chart, one row
/// per machine, plus a tick ruler. Returns an empty string for schedules
/// with no calibrations and no placements.
pub fn render_gantt(instance: &Instance, schedule: &Schedule, opts: &RenderOptions) -> String {
    let calib_len = schedule.calib_len_scaled(instance.calib_len());
    // Collect the covered time range.
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for c in &schedule.calibrations {
        lo = lo.min(c.start.ticks());
        hi = hi.max((c.start + calib_len).ticks());
    }
    for p in &schedule.placements {
        let Some(job) = instance.find_job(p.job) else {
            continue;
        };
        let Some(exec) = schedule.exec_len(job.proc) else {
            continue;
        };
        lo = lo.min(p.start.ticks());
        hi = hi.max((p.start + exec).ticks());
    }
    if lo > hi {
        return String::new();
    }
    let span = (hi - lo).max(1) as usize;
    // Ticks per character cell (>= 1).
    let scale = span.div_ceil(opts.max_width).max(1);
    let width = span.div_ceil(scale);
    let cell_of = |t: i64| (((t - lo).max(0) as usize) / scale).min(width.saturating_sub(1));

    // Group by machine.
    let mut machines: BTreeMap<usize, Vec<char>> = BTreeMap::new();
    // Calibrated spans first (as '.'), then job bars on top.
    for c in &schedule.calibrations {
        let cells = machines
            .entry(c.machine)
            .or_insert_with(|| vec![' '; width]);
        let a = cell_of(c.start.ticks());
        let b = cell_of((c.start + calib_len).ticks() - 1);
        for cell in cells.iter_mut().take(b + 1).skip(a) {
            if *cell == ' ' {
                *cell = '.';
            }
        }
    }
    let mut placements = schedule.placements.clone();
    placements.sort_unstable_by_key(|p| (p.machine, p.start));
    for (i, p) in placements.iter().enumerate() {
        let Some(job) = instance.find_job(p.job) else {
            continue;
        };
        let Some(exec) = schedule.exec_len(job.proc) else {
            continue;
        };
        let a = cell_of(p.start.ticks());
        let b = cell_of((p.start + exec).ticks() - 1);
        let fill = if i % 2 == 0 { '=' } else { '-' };
        let cells = machines
            .entry(p.machine)
            .or_insert_with(|| vec![' '; width]);
        for cell in cells.iter_mut().take(b + 1).skip(a) {
            *cell = fill;
        }
        if opts.label_jobs {
            let label = format!("j{}", p.job);
            if label.len() <= b + 1 - a {
                for (k, ch) in label.chars().enumerate() {
                    cells[a + k] = ch;
                }
            }
        }
    }

    // Calibration-start markers win over job bars: the boundary is the
    // piece of information a reader needs to check containment by eye.
    for c in &schedule.calibrations {
        if let Some(cells) = machines.get_mut(&c.machine) {
            cells[cell_of(c.start.ticks())] = '[';
        }
    }

    let mut out = String::new();
    let id_width = machines
        .keys()
        .max()
        .map(|m| m.to_string().len())
        .unwrap_or(1);
    for (machine, cells) in &machines {
        let body: String = cells.iter().collect();
        writeln!(out, "machine {machine:>id_width$} |{body}|").expect("write to String");
    }
    // Ruler: origin, midpoint, end.
    let prefix = " ".repeat("machine ".len() + id_width + 1);
    let mid = lo + (span as i64) / 2;
    let mut ruler = vec![' '; width + 2];
    let place_label = |ruler: &mut Vec<char>, cell: usize, text: &str| {
        for (k, ch) in text.chars().enumerate() {
            if cell + k + 1 < ruler.len() {
                ruler[cell + k + 1] = ch;
            }
        }
    };
    place_label(&mut ruler, 0, &lo.to_string());
    place_label(&mut ruler, width / 2, &mid.to_string());
    let hi_text = hi.to_string();
    let hi_cell = width.saturating_sub(hi_text.len());
    place_label(&mut ruler, hi_cell, &hi_text);
    writeln!(out, "{prefix}{}", ruler.into_iter().collect::<String>()).expect("write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn setup() -> (Instance, Schedule) {
        let inst = Instance::new([(0, 30, 4), (2, 25, 6)], 1, 10).unwrap();
        let mut s = Schedule::new();
        s.calibrate(0, Time(2));
        s.place(JobId(0), 0, Time(2));
        s.place(JobId(1), 0, Time(6));
        (inst, s)
    }

    #[test]
    fn renders_rows_and_ruler() {
        let (inst, s) = setup();
        let text = render_gantt(&inst, &s, &RenderOptions::default());
        assert!(text.contains("machine 0 |"));
        assert!(text.lines().count() == 2); // one machine + ruler
        assert!(text.contains('['), "calibration start marker missing");
        assert!(text.contains("j0") || text.contains('='), "job bar missing");
    }

    #[test]
    fn empty_schedule_renders_empty() {
        let inst = Instance::new([(0, 30, 4)], 1, 10).unwrap();
        assert_eq!(
            render_gantt(&inst, &Schedule::new(), &RenderOptions::default()),
            ""
        );
    }

    #[test]
    fn long_horizons_scale_down() {
        let inst = Instance::new([(0, 30, 4), (100_000, 100_030, 4)], 1, 10).unwrap();
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.place(JobId(0), 0, Time(0));
        s.calibrate(0, Time(100_000));
        s.place(JobId(1), 0, Time(100_000));
        let opts = RenderOptions {
            max_width: 50,
            label_jobs: false,
        };
        let text = render_gantt(&inst, &s, &opts);
        let body_len = text.lines().next().unwrap().len();
        assert!(body_len <= "machine 0 |".len() + 50 + 1);
    }

    #[test]
    fn multiple_machines_each_get_a_row() {
        let inst = Instance::new([(0, 30, 4), (0, 30, 4)], 2, 10).unwrap();
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.calibrate(1, Time(0));
        s.place(JobId(0), 0, Time(0));
        s.place(JobId(1), 1, Time(0));
        let text = render_gantt(&inst, &s, &RenderOptions::default());
        assert!(text.contains("machine 0 |"));
        assert!(text.contains("machine 1 |"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn uncovered_calibrated_time_shows_as_dots() {
        let inst = Instance::new([(0, 30, 2)], 1, 10).unwrap();
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.place(JobId(0), 0, Time(0));
        let text = render_gantt(
            &inst,
            &s,
            &RenderOptions {
                max_width: 20,
                label_jobs: false,
            },
        );
        assert!(
            text.contains('.'),
            "idle calibrated time should render as dots"
        );
    }
}
