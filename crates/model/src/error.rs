//! Error type shared by model construction.

use std::fmt;

/// Errors raised when constructing an [`crate::Instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// The calibration length `T` must be positive.
    NonPositiveCalibrationLength {
        /// The offending value.
        calib_len: i64,
    },
    /// The machine count `m` must be positive.
    NoMachines,
    /// A job's processing time must be positive.
    NonPositiveProcessingTime {
        /// Offending job index.
        job: usize,
    },
    /// A job's processing time exceeds the calibration length `T`; such a job
    /// can never run inside a single calibration.
    ProcessingTimeExceedsCalibration {
        /// Offending job index.
        job: usize,
        /// The job's processing time.
        proc: i64,
        /// The calibration length.
        calib_len: i64,
    },
    /// A job's window `[r_j, d_j)` is too small for its processing time
    /// (`d_j < r_j + p_j`).
    WindowTooSmall {
        /// Offending job index.
        job: usize,
    },
    /// A time value's magnitude exceeds
    /// [`MAX_INSTANCE_TICKS`](crate::MAX_INSTANCE_TICKS): downstream
    /// arithmetic (the Lemma 13 speed transform refines ticks by up to 36)
    /// would overflow `i64`.
    HorizonOverflow {
        /// Offending job index; `None` when the calibration length itself
        /// is out of range.
        job: Option<usize>,
        /// The out-of-range tick value.
        ticks: i64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveCalibrationLength { calib_len } => {
                write!(f, "calibration length T must be positive, got {calib_len}")
            }
            ModelError::NoMachines => write!(f, "instance must have at least one machine"),
            ModelError::NonPositiveProcessingTime { job } => {
                write!(f, "job {job}: processing time must be positive")
            }
            ModelError::ProcessingTimeExceedsCalibration {
                job,
                proc,
                calib_len,
            } => write!(
                f,
                "job {job}: processing time {proc} exceeds calibration length {calib_len}"
            ),
            ModelError::WindowTooSmall { job } => {
                write!(f, "job {job}: window cannot fit processing time")
            }
            ModelError::HorizonOverflow { job, ticks } => match job {
                Some(job) => write!(
                    f,
                    "job {job}: time value {ticks} exceeds the representable horizon \
                     (|ticks| <= i64::MAX / 36)"
                ),
                None => write!(
                    f,
                    "calibration length {ticks} exceeds the representable horizon \
                     (|ticks| <= i64::MAX / 36)"
                ),
            },
        }
    }
}

impl std::error::Error for ModelError {}
