//! Summary statistics for schedules, used by the experiment harness.

use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-machine usage breakdown.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Machine id.
    pub machine: usize,
    /// Calibrations on this machine.
    pub calibrations: usize,
    /// Work executed on this machine, in ticks.
    pub work: i64,
    /// Fraction of this machine's calibrated time spent executing jobs.
    pub utilization: f64,
}

/// Resource usage and utilization summary of a schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Number of calibrations (the ISE objective).
    pub calibrations: usize,
    /// Distinct machines used.
    pub machines: usize,
    /// Machine speed (resource augmentation).
    pub speed: i64,
    /// Total work placed, in ticks.
    pub total_work: i64,
    /// Total calibrated machine-time, in ticks (calibrations × `T`),
    /// normalized back to instance ticks and accounting for speed: a
    /// calibration at speed `s` supplies `s·T` ticks of work capacity.
    pub calibrated_capacity: i64,
    /// `total_work / calibrated_capacity` — fraction of paid-for calibrated
    /// time actually used.
    pub utilization: f64,
    /// Maximum number of calibrations whose intervals overlap any single
    /// point in time (a lower bound on machines needed for them).
    pub peak_concurrent_calibrations: usize,
    /// Number of calibrations containing no job.
    pub empty_calibrations: usize,
    /// Makespan: latest completion time (instance ticks, rounded up when
    /// speed-scaled), or 0 for empty schedules.
    pub makespan: i64,
    /// Per-machine breakdown, sorted by machine id.
    pub per_machine: Vec<MachineStats>,
}

impl ScheduleStats {
    /// Compute statistics of `schedule` for `instance`.
    pub fn compute(instance: &Instance, schedule: &Schedule) -> ScheduleStats {
        let calib_len = schedule.calib_len_scaled(instance.calib_len());
        let total_work: i64 = schedule
            .placements
            .iter()
            .filter_map(|p| instance.find_job(p.job))
            .map(|j| j.proc.ticks())
            .sum();
        let capacity =
            schedule.num_calibrations() as i64 * instance.calib_len().ticks() * schedule.speed;
        let utilization = if capacity > 0 {
            total_work as f64 / capacity as f64
        } else {
            0.0
        };

        // Peak concurrency via an event sweep over calibration intervals.
        let mut events: Vec<(Time, i32)> = Vec::with_capacity(schedule.calibrations.len() * 2);
        for c in &schedule.calibrations {
            events.push((c.start, 1));
            events.push((c.start + calib_len, -1));
        }
        events.sort_unstable_by_key(|&(t, delta)| (t, delta)); // ends (-1) before starts at equal t
        let mut depth = 0i32;
        let mut peak = 0i32;
        for (_, delta) in events {
            depth += delta;
            peak = peak.max(depth);
        }

        // Empty calibrations: those containing no placement.
        let mut by_machine: HashMap<usize, Vec<Time>> = HashMap::new();
        for p in &schedule.placements {
            by_machine.entry(p.machine).or_default().push(p.start);
        }
        for starts in by_machine.values_mut() {
            starts.sort_unstable();
        }
        let empty = schedule
            .calibrations
            .iter()
            .filter(|c| {
                by_machine
                    .get(&c.machine)
                    .map(|starts| {
                        let lo = starts.partition_point(|&s| s < c.start);
                        let hi = starts.partition_point(|&s| s < c.start + calib_len);
                        lo == hi
                    })
                    .unwrap_or(true)
            })
            .count();

        let makespan = schedule
            .placements
            .iter()
            .filter_map(|p| {
                let job = instance.find_job(p.job)?;
                let exec = schedule.exec_len(job.proc)?;
                Some((p.start + exec).ticks())
            })
            .max()
            .map(|end_scaled| {
                // Round up to instance ticks.
                end_scaled.div_euclid(schedule.time_scale)
                    + i64::from(end_scaled.rem_euclid(schedule.time_scale) != 0)
            })
            .unwrap_or(0);

        // Per-machine breakdown.
        let mut machines: std::collections::BTreeMap<usize, (usize, i64)> =
            std::collections::BTreeMap::new();
        for c in &schedule.calibrations {
            machines.entry(c.machine).or_default().0 += 1;
        }
        for p in &schedule.placements {
            if let Some(job) = instance.find_job(p.job) {
                machines.entry(p.machine).or_default().1 += job.proc.ticks();
            }
        }
        let per_machine = machines
            .into_iter()
            .map(|(machine, (cals, work))| {
                let cap = cals as i64 * instance.calib_len().ticks() * schedule.speed;
                MachineStats {
                    machine,
                    calibrations: cals,
                    work,
                    utilization: if cap > 0 {
                        work as f64 / cap as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        ScheduleStats {
            calibrations: schedule.num_calibrations(),
            machines: schedule.machines_used(),
            speed: schedule.speed,
            total_work,
            calibrated_capacity: capacity,
            utilization,
            peak_concurrent_calibrations: peak as usize,
            empty_calibrations: empty,
            makespan,
            per_machine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    #[test]
    fn stats_of_simple_schedule() {
        let inst = Instance::new([(0, 30, 4), (2, 25, 6)], 1, 10).unwrap();
        let mut s = Schedule::new();
        s.calibrate(0, Time(2));
        s.calibrate(1, Time(5)); // empty, overlaps the first in time
        s.place(JobId(0), 0, Time(2));
        s.place(JobId(1), 0, Time(6));
        let stats = ScheduleStats::compute(&inst, &s);
        assert_eq!(stats.calibrations, 2);
        assert_eq!(stats.machines, 2);
        assert_eq!(stats.total_work, 10);
        assert_eq!(stats.calibrated_capacity, 20);
        assert!((stats.utilization - 0.5).abs() < 1e-12);
        assert_eq!(stats.peak_concurrent_calibrations, 2);
        assert_eq!(stats.empty_calibrations, 1);
        assert_eq!(stats.makespan, 12);
    }

    #[test]
    fn per_machine_breakdown() {
        let inst = Instance::new([(0, 30, 4), (2, 25, 6)], 2, 10).unwrap();
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.place(JobId(0), 0, Time(0));
        s.calibrate(1, Time(2));
        s.place(JobId(1), 1, Time(2));
        let stats = ScheduleStats::compute(&inst, &s);
        assert_eq!(stats.per_machine.len(), 2);
        assert_eq!(stats.per_machine[0].machine, 0);
        assert_eq!(stats.per_machine[0].work, 4);
        assert!((stats.per_machine[0].utilization - 0.4).abs() < 1e-12);
        assert_eq!(stats.per_machine[1].work, 6);
    }

    #[test]
    fn empty_schedule_stats() {
        let inst = Instance::new([], 1, 10).unwrap();
        let s = Schedule::new();
        let stats = ScheduleStats::compute(&inst, &s);
        assert_eq!(stats.calibrations, 0);
        assert_eq!(stats.utilization, 0.0);
        assert_eq!(stats.makespan, 0);
    }

    #[test]
    fn speed_counts_toward_capacity() {
        let inst = Instance::new([(0, 30, 4)], 1, 10).unwrap();
        let mut s = Schedule::with_augmentation(2, 2);
        s.calibrate(0, Time(0));
        s.place(JobId(0), 0, Time(0));
        let stats = ScheduleStats::compute(&inst, &s);
        assert_eq!(stats.calibrated_capacity, 20); // T=10 at speed 2
        assert_eq!(stats.makespan, 2); // 4 schedule units / scale 2
    }

    #[test]
    fn back_to_back_calibrations_have_depth_one() {
        let inst = Instance::new([(0, 40, 4)], 1, 10).unwrap();
        let mut s = Schedule::new();
        s.calibrate(0, Time(0));
        s.calibrate(0, Time(10));
        s.place(JobId(0), 0, Time(0));
        let stats = ScheduleStats::compute(&inst, &s);
        assert_eq!(stats.peak_concurrent_calibrations, 1);
        assert_eq!(stats.empty_calibrations, 1);
    }
}
