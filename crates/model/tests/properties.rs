//! Property tests for the model crate: transformation round trips, serde
//! stability, validator coherence across modes, and renderer robustness.

use ise_model::{
    normalize_origin, render_gantt, rescale_ticks, shift_schedule, shift_time, validate,
    validate_relaxed, Dur, Instance, InstanceBuilder, JobId, RenderOptions, Schedule, Time,
    MAX_INSTANCE_TICKS,
};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    let job = (-20i64..60, 1i64..9, 0i64..25);
    proptest::collection::vec(job, 1..10).prop_map(|raw| {
        let mut b = InstanceBuilder::new(2, 10);
        for (r, p, slack) in raw {
            b.push(r, r + p + slack, p);
        }
        b.build().expect("well-formed")
    })
}

/// Instances whose coordinates hug the representable horizon
/// (`±MAX_INSTANCE_TICKS = ±i64::MAX / 36`): each job sits within a few
/// thousand ticks of one edge. Exercises validator and transform
/// arithmetic where a single unchecked add or ceil-div pre-step wraps.
fn arb_extreme_instance() -> impl Strategy<Value = Instance> {
    let job = (0i64..2000, 1i64..9, 0i64..25, any::<bool>());
    proptest::collection::vec(job, 1..8).prop_map(|raw| {
        let mut b = InstanceBuilder::new(2, 10);
        for (off, p, slack, negative) in raw {
            let r = if negative {
                -MAX_INSTANCE_TICKS + off
            } else {
                MAX_INSTANCE_TICKS - off - p - slack
            };
            b.push(r, r + p + slack, p);
        }
        b.build().expect("in-range extreme instance is well-formed")
    })
}

/// A simple feasible schedule: every job alone on machine 0..n at release.
fn trivial_schedule(inst: &Instance) -> Schedule {
    let mut s = Schedule::new();
    for (m, j) in inst.jobs().iter().enumerate() {
        s.calibrate(m, j.release);
        s.place(j.id, m, j.release);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// The one-job-per-machine schedule is always feasible (p <= T).
    #[test]
    fn trivial_schedule_validates(inst in arb_instance()) {
        let s = trivial_schedule(&inst);
        prop_assert!(validate(&inst, &s).is_ok());
        // Strict feasibility implies relaxed feasibility.
        prop_assert!(validate_relaxed(&inst, &s).is_ok());
    }

    /// Shifting instance and schedule in lockstep preserves feasibility
    /// and all counts, in both directions.
    #[test]
    fn shift_round_trip(inst in arb_instance(), delta in -500i64..500) {
        let s = trivial_schedule(&inst);
        let inst2 = shift_time(&inst, Dur(delta));
        let s2 = shift_schedule(&s, Dur(delta));
        prop_assert!(validate(&inst2, &s2).is_ok());
        prop_assert_eq!(s2.num_calibrations(), s.num_calibrations());
        // Round trip back.
        let inst3 = shift_time(&inst2, Dur(-delta));
        prop_assert_eq!(&inst3, &inst);
    }

    /// Rescaling ticks preserves the long/short split and feasibility of a
    /// correspondingly rescaled schedule.
    #[test]
    fn rescale_preserves_structure(inst in arb_instance(), k in 1i64..6) {
        let inst2 = rescale_ticks(&inst, k);
        prop_assert_eq!(
            inst.partition_long_short().0.len(),
            inst2.partition_long_short().0.len()
        );
        let mut s2 = Schedule::new();
        for (m, j) in inst2.jobs().iter().enumerate() {
            s2.calibrate(m, j.release);
            s2.place(j.id, m, j.release);
        }
        prop_assert!(validate(&inst2, &s2).is_ok());
    }

    /// normalize_origin always lands min release at 0.
    #[test]
    fn normalization_anchors_origin(inst in arb_instance()) {
        let (inst2, _) = normalize_origin(&inst);
        prop_assert_eq!(inst2.min_release(), Time(0));
    }

    /// Serde round trip is the identity for instances and schedules.
    #[test]
    fn serde_round_trip(inst in arb_instance()) {
        let json = serde_json::to_string(&inst).expect("serialize");
        let back: Instance = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &inst);
        let s = trivial_schedule(&inst);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: Schedule = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &s);
    }

    /// The renderer never panics and emits one row per used machine plus a
    /// ruler, at any width.
    #[test]
    fn renderer_is_total(inst in arb_instance(), width in 10usize..200) {
        let s = trivial_schedule(&inst);
        let text = render_gantt(&inst, &s, &RenderOptions { max_width: width, label_jobs: true });
        prop_assert_eq!(text.lines().count(), inst.len() + 1);
        for line in text.lines().take(inst.len()) {
            prop_assert!(line.starts_with("machine "));
        }
    }

    /// At the representable-horizon edge, validation still works in both
    /// modes: no wrap turns a feasible schedule infeasible (or vice
    /// versa), in debug or release.
    #[test]
    fn validation_is_exact_at_the_horizon_edge(inst in arb_extreme_instance()) {
        let s = trivial_schedule(&inst);
        prop_assert!(validate(&inst, &s).is_ok());
        prop_assert!(validate_relaxed(&inst, &s).is_ok());
        // A gross mutation at the edge is still caught.
        let mut bad = trivial_schedule(&inst);
        bad.placements[0].start += Dur(500);
        prop_assert!(validate(&inst, &bad).is_err());
    }

    /// Values beyond the representable horizon are rejected by the
    /// builder with a typed verdict — including the classic wrap witness
    /// where `r + p` overflows i64 itself.
    #[test]
    fn builder_rejects_beyond_horizon(excess in 1i64..5000, p in 1i64..9) {
        let big = MAX_INSTANCE_TICKS + excess;
        let r = big - p - 10;
        prop_assert!(matches!(
            Instance::new([(r, big, p)], 1, 10),
            Err(ise_model::ModelError::HorizonOverflow { .. })
        ));
        prop_assert!(matches!(
            Instance::new([(-big, 0, p)], 1, 10),
            Err(ise_model::ModelError::HorizonOverflow { .. })
        ));
    }

    /// Mutating any placement off its calibration start by more than the
    /// calibration slack is caught by the validator.
    #[test]
    fn validator_catches_gross_mutations(inst in arb_instance(), jump in 1000i64..5000) {
        let mut s = trivial_schedule(&inst);
        s.placements[0].start += Dur(jump);
        prop_assert!(validate(&inst, &s).is_err());
        // Removing the placement is also caught.
        let mut s2 = trivial_schedule(&inst);
        s2.placements.remove(0);
        let unplaced = matches!(
            validate(&inst, &s2),
            Err(ise_model::ValidationError::Unplaced { .. })
        );
        prop_assert!(unplaced);
    }
}

#[test]
fn schedule_helpers_compose() {
    let inst = Instance::new([(0, 30, 4), (5, 40, 6)], 2, 10).unwrap();
    let mut a = trivial_schedule(&inst);
    a.compact_machines();
    assert_eq!(a.machines_used(), 2);
    assert!(a.placement_of(JobId(1)).is_some());
    assert!(a.placement_of(JobId(9)).is_none());
}
