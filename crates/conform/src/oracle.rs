//! The oracle stack: independent recomputations of the same quantity that
//! must agree on every instance.
//!
//! Each oracle compares two execution paths (or one path against a proved
//! invariant) and reports the first [`Discrepancy`] it finds. The checks
//! are deliberately *sound*: every inequality asserted here is a theorem
//! of the paper or a mathematical identity, so a reported discrepancy is a
//! real bug (in one of the two paths, the validator, or the theory
//! bindings) — never fuzzer noise.
//!
//! Covered pairs:
//!
//! * [`Oracle::Budgets`] — `validate`, `audit`, the lower-bound lattice
//!   (`calibrations >= lower_bound.best`), and the Lemma 2 trimming factor
//!   (TISE transform is valid and costs exactly 3×) on long-only inputs.
//! * [`Oracle::Exact`] — full `solve` vs `exact::optimal` on small
//!   instances: the optimum never exceeds the heuristic, a feasible
//!   witness contradicts exhaustive infeasibility and vice versa, and
//!   Theorem 12's `12·C*` calibration budget holds on long-only inputs.
//! * [`Oracle::Dense`] — the default LP configuration (LU basis, devex,
//!   Harris) vs an independently implemented path pinned to the eta-file
//!   kernel, Dantzig pricing, and the baseline ratio test, end to end:
//!   same feasibility verdict, agreeing LP objectives, both schedules
//!   valid and within budget.
//! * [`Oracle::Warm`] — warm-started re-solve of the same instance must
//!   reproduce the cold result exactly (same objective, same calibration
//!   count): warm starts only skip phase 1.
//! * [`Oracle::Engine`] — the batch engine (fresh, single worker) vs a
//!   direct call: first response equals the direct solve, duplicate
//!   submission is served from cache and is bit-identical.
//! * [`Oracle::Metamorphic`] — calibration count is invariant under
//!   time-shifts by multiples of the Algorithm 4 period `2γT` and under
//!   machine relabeling; widening one window never loses feasibility and
//!   never raises the exact optimum.
//! * [`Oracle::Session`] — incremental vs from-scratch: a deterministic
//!   delta log derived from `(instance, meta_seed)` replays through
//!   [`ise_session::Session`], and every commit must match a cold solve
//!   of the materialized instance: same verdict, same calibration count,
//!   agreeing LP objectives, schedule validated. Cold-tier commits must
//!   reproduce the cold schedule bit-for-bit (identical code path);
//!   basis/warm tiers may land on a different optimal LP vertex — the
//!   same caveat the dense and warm oracles document — so their
//!   schedules are compared by count, not bytes. Because the log is a
//!   pure function of the instance, shrinking the instance shrinks the
//!   delta log for free.

use ise_engine::{Engine, EngineConfig, EngineRequest};
use ise_model::{shift_time, validate, validate_tise, Dur, Instance};
use ise_sched::exact::{optimal, ExactOptions};
use ise_sched::lower_bound::lower_bound;
use ise_sched::short_window::GAMMA;
use ise_sched::tise::to_tise;
use ise_sched::{audit, solve, SchedError, SolveOutcome, SolverOptions};
use std::fmt;

/// One member of the oracle stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Validator + theorem-budget audit + lower-bound lattice + Lemma 2.
    Budgets,
    /// `solve` vs brute-force `exact::optimal` (small instances only).
    Exact,
    /// LU/devex/Harris vs eta/Dantzig/baseline through the full pipeline.
    Dense,
    /// Warm-started vs cold LP basis.
    Warm,
    /// Engine-cached vs direct solve.
    Engine,
    /// Metamorphic invariances (time shift, relabeling, widening).
    Metamorphic,
    /// Incremental session replay vs from-scratch solves.
    Session,
}

impl Oracle {
    /// Every oracle, in the order they run.
    pub const ALL: [Oracle; 7] = [
        Oracle::Budgets,
        Oracle::Exact,
        Oracle::Dense,
        Oracle::Warm,
        Oracle::Engine,
        Oracle::Metamorphic,
        Oracle::Session,
    ];

    /// Stable CLI / corpus name.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Budgets => "budgets",
            Oracle::Exact => "exact",
            Oracle::Dense => "dense",
            Oracle::Warm => "warm",
            Oracle::Engine => "engine",
            Oracle::Metamorphic => "metamorphic",
            Oracle::Session => "session",
        }
    }

    /// Parse a comma-separated oracle list (`"all"` selects every oracle).
    pub fn parse_list(s: &str) -> Result<Vec<Oracle>, String> {
        if s == "all" {
            return Ok(Oracle::ALL.to_vec());
        }
        s.split(',')
            .map(|part| {
                let part = part.trim();
                Oracle::ALL
                    .into_iter()
                    .find(|o| o.name() == part)
                    .ok_or_else(|| {
                        format!(
                            "unknown oracle `{part}` (expected one of {}, or `all`)",
                            Oracle::ALL.map(|o| o.name()).join(", ")
                        )
                    })
            })
            .collect()
    }
}

impl fmt::Display for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs for the oracle stack.
#[derive(Clone, Debug)]
pub struct OracleOptions {
    /// Run the exact oracle only on instances with at most this many jobs.
    pub exact_job_cap: usize,
    /// `max_calibrations` ceiling for the exhaustive search.
    pub exact_calib_cap: usize,
    /// Node budget for the exhaustive search; overruns skip the oracle.
    pub exact_node_budget: u64,
    /// Seed for the metamorphic widening mutation (varied per case).
    pub meta_seed: u64,
}

impl Default for OracleOptions {
    fn default() -> OracleOptions {
        OracleOptions {
            exact_job_cap: 7,
            exact_calib_cap: 8,
            exact_node_budget: 2_000_000,
            meta_seed: 0,
        }
    }
}

/// A disagreement between two oracle paths — a bug witness.
#[derive(Clone, Debug)]
pub struct Discrepancy {
    /// Which oracle pair disagreed.
    pub oracle: Oracle,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Relative LP-objective agreement tolerance (matches the equivalence
/// property tests).
const OBJ_TOL: f64 = 1e-6;

fn disc(oracle: Oracle, detail: impl Into<String>) -> Discrepancy {
    Discrepancy {
        oracle,
        detail: detail.into(),
    }
}

/// The base verdict every oracle compares against.
enum Base {
    Feasible(Box<SolveOutcome>),
    Infeasible(String),
}

/// Run the base solve and its always-on sanity checks.
fn base_solve(instance: &Instance) -> Result<Base, Discrepancy> {
    match solve(instance, &SolverOptions::default()) {
        Ok(out) => Ok(Base::Feasible(Box::new(out))),
        Err(SchedError::Infeasible { reason }) => Ok(Base::Infeasible(reason)),
        Err(e) => Err(disc(
            Oracle::Budgets,
            format!("solve failed with a non-verdict error: {e}"),
        )),
    }
}

/// Run `oracles` against `instance`; `Err` carries the first discrepancy.
///
/// This is the single entry point the fuzz loop, the shrinker, and corpus
/// replay all share, so a shrunk repro keeps failing for the same reason
/// the original did.
pub fn check_instance(
    instance: &Instance,
    oracles: &[Oracle],
    opts: &OracleOptions,
) -> Result<(), Discrepancy> {
    let base = base_solve(instance)?;

    for &oracle in oracles {
        match oracle {
            Oracle::Budgets => check_budgets(instance, &base)?,
            Oracle::Exact => check_exact(instance, &base, opts)?,
            Oracle::Dense => check_dense(instance, &base)?,
            Oracle::Warm => check_warm(instance, &base)?,
            Oracle::Engine => check_engine(instance, &base)?,
            Oracle::Metamorphic => check_metamorphic(instance, &base, opts)?,
            Oracle::Session => check_session(instance, opts)?,
        }
    }
    Ok(())
}

fn check_budgets(instance: &Instance, base: &Base) -> Result<(), Discrepancy> {
    let o = Oracle::Budgets;
    let Base::Feasible(out) = base else {
        return Ok(());
    };
    validate(instance, &out.schedule)
        .map_err(|e| disc(o, format!("solve produced an invalid schedule: {e}")))?;
    let report = audit(instance, out);
    if !report.all_ok() {
        let failed: Vec<String> = report
            .failures()
            .iter()
            .map(|c| format!("{} ({} > {})", c.name, c.actual, c.budget))
            .collect();
        return Err(disc(
            o,
            format!("theorem audit failed: {}", failed.join("; ")),
        ));
    }
    let lb = lower_bound(instance, &Default::default());
    let cals = out.schedule.num_calibrations() as u64;
    if cals < lb.best {
        return Err(disc(
            o,
            format!(
                "schedule with {cals} calibrations beats the certified lower bound {} \
                 (work {}, interval {}, lp {:?})",
                lb.best, lb.work, lb.interval, lb.lp_long
            ),
        ));
    }
    // Algorithm 1 identity: at threshold 1/2, rounding the fractional
    // masses emits exactly floor(2 · Σ c_t) calibrations (before the
    // Lemma 9 mirror). Both sides come from the same solve, so any drift
    // is a rounding-implementation bug, not LP nondeterminism.
    if let Some(long) = &out.long {
        let mass: f64 = long.fractional.c.iter().sum();
        let expected = (2.0 * mass + 1e-6).floor() as usize;
        if long.rounded_calibrations != expected {
            return Err(disc(
                o,
                format!(
                    "Algorithm 1 rounding emitted {} calibrations from LP mass {mass} \
                     (expected exactly {expected})",
                    long.rounded_calibrations
                ),
            ));
        }
    }
    // Numerics: the simplex residual monitor must have run on every LP
    // solve and left the basis residual under the solver's own tolerance —
    // otherwise the rounding above consumed fractional masses the basis
    // cannot reproduce.
    if let Some(long) = &out.long {
        let numerics = &long.fractional.numerics;
        if numerics.residual_checks == 0 {
            return Err(disc(
                o,
                "LP solve finished without a single residual check".to_string(),
            ));
        }
        let tol = ise_simplex::SolveOptions::default().residual_tol;
        if numerics.max_residual > tol {
            return Err(disc(
                o,
                format!(
                    "LP basis residual {:.3e} exceeds the solver tolerance {tol:.1e} \
                     after {} recoveries",
                    numerics.max_residual,
                    numerics.recoveries_total()
                ),
            ));
        }
    }
    // Lemma 2: the TISE transform of the long-window schedule is valid and
    // costs exactly 3x.
    if instance.all_long() && !instance.is_empty() {
        if let Some(long) = &out.long {
            let transformed = to_tise(instance, &long.schedule)
                .map_err(|e| disc(o, format!("Lemma 2 transform failed: {e}")))?;
            validate_tise(instance, &transformed)
                .map_err(|e| disc(o, format!("Lemma 2 transform is invalid: {e}")))?;
            let (got, want) = (
                transformed.num_calibrations(),
                3 * long.schedule.num_calibrations(),
            );
            if got != want {
                return Err(disc(
                    o,
                    format!("Lemma 2 trim factor violated: {got} calibrations, expected {want}"),
                ));
            }
        }
    }
    Ok(())
}

fn check_exact(instance: &Instance, base: &Base, opts: &OracleOptions) -> Result<(), Discrepancy> {
    let o = Oracle::Exact;
    if instance.len() > opts.exact_job_cap {
        return Ok(());
    }
    match base {
        Base::Feasible(out) => {
            let cals = out.schedule.num_calibrations();
            // Theorem 12's pipeline is resource-augmented: the witness may
            // use up to 18m machines, while `exact` searches exactly the
            // instance's m. Count comparisons against the witness are only
            // sound when the witness itself fits within m machines.
            let witness_fits = out.schedule.machines_used() <= instance.machines();
            let cap = if witness_fits {
                // An m-machine witness with `cals` calibrations exists, so
                // a search capped at `cals` MUST find something.
                cals.min(opts.exact_calib_cap)
            } else {
                opts.exact_calib_cap
            };
            if witness_fits && cap < cals {
                return Ok(()); // optimum may genuinely exceed the search cap
            }
            let exact = match optimal(
                instance,
                &ExactOptions {
                    max_calibrations: cap,
                    node_budget: opts.exact_node_budget,
                    ..ExactOptions::default()
                },
            ) {
                Ok(r) => r,
                Err(SchedError::BudgetExceeded) => return Ok(()), // too hard; skip
                Err(e) => return Err(disc(o, format!("exact search errored: {e}"))),
            };
            let Some(exact) = exact else {
                if witness_fits {
                    return Err(disc(
                        o,
                        format!(
                            "exact search says no schedule with <= {cals} calibrations exists, \
                             but solve produced a valid {}-machine witness with {cals}",
                            out.schedule.machines_used()
                        ),
                    ));
                }
                // The augmented witness needed extra machines; the m-machine
                // problem may genuinely need more than `cap` calibrations.
                return Ok(());
            };
            if witness_fits && exact.calibrations > cals {
                return Err(disc(
                    o,
                    format!(
                        "exact optimum {} exceeds the heuristic's {cals} calibrations \
                         on the same machine count",
                        exact.calibrations
                    ),
                ));
            }
            let lb = lower_bound(instance, &Default::default());
            if (exact.calibrations as u64) < lb.best {
                return Err(disc(
                    o,
                    format!(
                        "exact optimum {} beats the certified lower bound {}",
                        exact.calibrations, lb.best
                    ),
                ));
            }
            // Theorem 12 ratio on long-only inputs (the combined solver is
            // exactly the long pipeline there): <= 12 C*, with the same
            // small-value guard the theorem-bound tests use.
            if instance.all_long() && cals > (12 * exact.calibrations).max(4) {
                return Err(disc(
                    o,
                    format!(
                        "Theorem 12 ratio blown: {cals} calibrations vs exact optimum {} \
                         (budget {})",
                        exact.calibrations,
                        (12 * exact.calibrations).max(4)
                    ),
                ));
            }
        }
        Base::Infeasible(reason) => {
            // `solve`'s infeasibility is *certified*; an exhaustive witness
            // on the same machine count contradicts the certificate.
            let exact = match optimal(
                instance,
                &ExactOptions {
                    max_calibrations: opts.exact_calib_cap,
                    node_budget: opts.exact_node_budget,
                    ..ExactOptions::default()
                },
            ) {
                Ok(r) => r,
                Err(SchedError::BudgetExceeded) => return Ok(()),
                Err(e) => return Err(disc(o, format!("exact search errored: {e}"))),
            };
            if let Some(exact) = exact {
                return Err(disc(
                    o,
                    format!(
                        "solve certified infeasibility ({reason}) but an exhaustive search \
                         found a {}-calibration schedule",
                        exact.calibrations
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Solve with the product-form eta-file kernel under Dantzig pricing and
/// the pre-Harris baseline ratio test — the oracle differs from the base
/// solve (LU / devex / Harris) on the basis-factorization axis, the
/// pricing-rule axis, and the ratio-test axis, so agreement cross-checks
/// the Markowitz/Forrest–Tomlin kernel, devex partial pricing, and the
/// Harris two-pass rule in one shot.
fn dense_options() -> SolverOptions {
    let mut opts = SolverOptions::default();
    opts.long.lp = ise_simplex::SolveOptions {
        factorization: ise_simplex::Factorization::Eta,
        pricing: ise_simplex::Pricing::Dantzig,
        ratio_test: ise_simplex::RatioTest::Baseline,
        ..ise_simplex::SolveOptions::default()
    };
    opts
}

fn objectives_agree(a: f64, b: f64) -> bool {
    (a - b).abs() <= OBJ_TOL * (1.0 + a.abs())
}

fn check_dense(instance: &Instance, base: &Base) -> Result<(), Discrepancy> {
    let o = Oracle::Dense;
    let oracle = solve(instance, &dense_options());
    match (base, oracle) {
        (Base::Feasible(s), Ok(d)) => {
            validate(instance, &d.schedule).map_err(|e| {
                disc(
                    o,
                    format!("oracle-path (eta/Dantzig/baseline) schedule is invalid: {e}"),
                )
            })?;
            if !audit(instance, &d).all_ok() {
                return Err(disc(
                    o,
                    "oracle-path (eta/Dantzig/baseline) outcome fails the theorem audit",
                ));
            }
            if let (Some(sl), Some(dl)) = (&s.long, &d.long) {
                if !objectives_agree(sl.fractional.objective, dl.fractional.objective) {
                    return Err(disc(
                        o,
                        format!(
                            "LP objectives diverge: default {} vs oracle {}",
                            sl.fractional.objective, dl.fractional.objective
                        ),
                    ));
                }
            }
        }
        (Base::Infeasible(_), Err(SchedError::Infeasible { .. })) => {}
        (Base::Feasible(_), Err(e)) => {
            return Err(disc(
                o,
                format!("default path solved but the oracle path failed: {e}"),
            ));
        }
        (Base::Infeasible(reason), Ok(d)) => {
            return Err(disc(
                o,
                format!(
                    "default path certified infeasibility ({reason}) but the oracle path \
                     found {} calibrations",
                    d.schedule.num_calibrations()
                ),
            ));
        }
        (Base::Infeasible(_), Err(e)) => {
            return Err(disc(
                o,
                format!("oracle path failed with a non-verdict error: {e}"),
            ));
        }
    }
    Ok(())
}

fn check_warm(instance: &Instance, base: &Base) -> Result<(), Discrepancy> {
    let o = Oracle::Warm;
    let Base::Feasible(out) = base else {
        return Ok(());
    };
    let Some(long) = &out.long else {
        return Ok(()); // no LP ran; nothing to warm-start
    };
    let Some(basis) = &long.fractional.basis else {
        return Ok(());
    };
    let mut opts = SolverOptions::default();
    opts.long.warm_basis = Some(basis.clone());
    let warm = match solve(instance, &opts) {
        Ok(w) => w,
        Err(e) => {
            return Err(disc(
                o,
                format!("cold solve succeeded but the warm-started re-solve failed: {e}"),
            ));
        }
    };
    validate(instance, &warm.schedule)
        .map_err(|e| disc(o, format!("warm-started schedule is invalid: {e}")))?;
    let wl = warm
        .long
        .as_ref()
        .expect("warm solve kept the long pipeline");
    if !objectives_agree(long.fractional.objective, wl.fractional.objective) {
        return Err(disc(
            o,
            format!(
                "warm-start changed the LP optimum: cold {} vs warm {}",
                long.fractional.objective, wl.fractional.objective
            ),
        ));
    }
    // Same instance, same rhs: the warm path must land on the same vertex
    // and hence the same rounded schedule size.
    let (cold_cals, warm_cals) = (
        out.schedule.num_calibrations(),
        warm.schedule.num_calibrations(),
    );
    if cold_cals != warm_cals {
        return Err(disc(
            o,
            format!(
                "warm-start changed the result: cold {cold_cals} vs warm {warm_cals} calibrations"
            ),
        ));
    }
    Ok(())
}

fn check_engine(instance: &Instance, base: &Base) -> Result<(), Discrepancy> {
    let o = Oracle::Engine;
    // A fresh single-worker engine per check: no cross-instance warm-basis
    // or cache contamination, so the first response must reproduce the
    // direct solve exactly.
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let submit = |label: &str| -> Result<ise_engine::EngineResponse, Discrepancy> {
        engine
            .submit(EngineRequest::new(instance.clone()))
            .map(|slot| slot.wait())
            .map_err(|e| disc(o, format!("{label} submit refused: {e}")))
    };
    let first = submit("first")?;
    let second = submit("second")?;
    match base {
        Base::Feasible(out) => {
            if first.status != "ok" {
                return Err(disc(
                    o,
                    format!(
                        "direct solve succeeded but the engine returned status {:?} ({:?})",
                        first.status, first.error
                    ),
                ));
            }
            let engine_schedule = first
                .schedule
                .as_ref()
                .ok_or_else(|| disc(o, "ok response carried no schedule"))?;
            if *engine_schedule != out.schedule {
                return Err(disc(
                    o,
                    format!(
                        "engine schedule diverges from the direct solve \
                         ({} vs {} calibrations)",
                        engine_schedule.num_calibrations(),
                        out.schedule.num_calibrations()
                    ),
                ));
            }
        }
        Base::Infeasible(_) => {
            if first.status != "error" {
                return Err(disc(
                    o,
                    format!(
                        "direct solve certified infeasibility but the engine returned \
                         status {:?}",
                        first.status
                    ),
                ));
            }
        }
    }
    // The duplicate must be served from cache, bit-identical (errors are
    // not cached, so only expect a hit on success).
    if first.status == "ok" {
        if !second.cached {
            return Err(disc(o, "duplicate submission missed the result cache"));
        }
        if second.schedule != first.schedule {
            return Err(disc(o, "cached response differs from the original"));
        }
    }
    Ok(())
}

fn check_metamorphic(
    instance: &Instance,
    base: &Base,
    opts: &OracleOptions,
) -> Result<(), Discrepancy> {
    let o = Oracle::Metamorphic;
    let period = 2 * GAMMA * instance.calib_len().ticks();

    // Time-shift invariance: shifting all windows by a multiple of the
    // Algorithm 4 period 2γT translates both pipelines' structures
    // (calibration points r_j + kT, both interval partitions), so the
    // verdict and the calibration count must not change.
    for k in [1i64, 3] {
        let shifted = shift_time(instance, Dur(k * period));
        let shifted_verdict = solve(&shifted, &SolverOptions::default());
        match (base, shifted_verdict) {
            (Base::Feasible(out), Ok(s)) => {
                validate(&shifted, &s.schedule)
                    .map_err(|e| disc(o, format!("shifted schedule invalid: {e}")))?;
                let (a, b) = (
                    out.schedule.num_calibrations(),
                    s.schedule.num_calibrations(),
                );
                if a != b {
                    return Err(disc(
                        o,
                        format!(
                            "time-shift by {}·2γT changed the calibration count: {a} vs {b}",
                            k
                        ),
                    ));
                }
            }
            (Base::Infeasible(_), Err(SchedError::Infeasible { .. })) => {}
            (Base::Feasible(_), Err(e)) => {
                return Err(disc(o, format!("shifted copy failed: {e}")));
            }
            (Base::Infeasible(_), Ok(_)) => {
                return Err(disc(
                    o,
                    format!("infeasible instance became feasible under a {k}·2γT shift"),
                ));
            }
            (Base::Infeasible(_), Err(e)) => {
                return Err(disc(o, format!("shifted copy errored: {e}")));
            }
        }
    }

    if let Base::Feasible(out) = base {
        // Machine relabeling: reversing machine ids is a bijection, so the
        // relabeled schedule must stay valid with the same count.
        let mut relabeled = out.schedule.clone();
        let span = relabeled
            .calibrations
            .iter()
            .map(|c| c.machine)
            .chain(relabeled.placements.iter().map(|p| p.machine))
            .max()
            .unwrap_or(0);
        for c in &mut relabeled.calibrations {
            c.machine = span - c.machine;
        }
        for p in &mut relabeled.placements {
            p.machine = span - p.machine;
        }
        validate(instance, &relabeled)
            .map_err(|e| disc(o, format!("machine relabeling broke validity: {e}")))?;
        if relabeled.num_calibrations() != out.schedule.num_calibrations() {
            return Err(disc(o, "machine relabeling changed the calibration count"));
        }
    }

    // Widening one window enlarges the feasible set: a feasible instance
    // must stay feasible, and on exact-oracle-sized inputs the optimum
    // must not increase.
    if !instance.is_empty() {
        let widened = ise_workloads::widen_one_window(instance, opts.meta_seed);
        let widened_verdict = solve(&widened, &SolverOptions::default());
        if matches!(base, Base::Feasible(_)) {
            match widened_verdict {
                Ok(w) => {
                    validate(&widened, &w.schedule)
                        .map_err(|e| disc(o, format!("widened schedule invalid: {e}")))?;
                }
                Err(SchedError::Infeasible { reason }) => {
                    return Err(disc(
                        o,
                        format!(
                            "widening a window turned a feasible instance infeasible ({reason})"
                        ),
                    ));
                }
                Err(e) => return Err(disc(o, format!("widened copy errored: {e}"))),
            }
        }
        if instance.len() <= opts.exact_job_cap {
            let search = |inst: &Instance| {
                optimal(
                    inst,
                    &ExactOptions {
                        max_calibrations: opts.exact_calib_cap,
                        node_budget: opts.exact_node_budget,
                        ..ExactOptions::default()
                    },
                )
            };
            if let (Ok(Some(orig)), Ok(Some(wide))) = (search(instance), search(&widened)) {
                if wide.calibrations > orig.calibrations {
                    return Err(disc(
                        o,
                        format!(
                            "widening a window raised the exact optimum: {} -> {}",
                            orig.calibrations, wide.calibrations
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Derive a deterministic delta log from `(instance, seed)`.
///
/// The log is a pure function of the instance contents and the seed, so
/// the shrinker never has to manipulate it: shrinking the instance
/// re-derives a correspondingly smaller log, and a corpus repro replays
/// the exact same session it failed on.
///
/// The batches deliberately cover all three reuse tiers: a
/// machine-budget change (basis), a job addition (warm), and a
/// remove + window-shift batch (cold).
fn session_delta_log(instance: &Instance, seed: u64) -> Vec<Vec<ise_session::Delta>> {
    use ise_session::Delta;
    let r = |i: u64| crate::case_seed(seed ^ 0x5e55_1099, i);
    let t = instance.calib_len().ticks().max(1) as u64;
    let mut log = Vec::new();

    let machines = 1 + (r(0) as usize) % (instance.machines() + 2);
    log.push(vec![Delta::SetMachines(machines)]);

    let mut added = Vec::new();
    for i in 0..1 + r(1) % 2 {
        let proc = (1 + r(2 + i) % t) as i64;
        let release = (r(4 + i) % (4 * t)) as i64;
        let slack = (r(6 + i) % (2 * t)) as i64;
        added.push((release, release + proc + slack, proc));
    }
    let jobs_after_add = instance.len() + added.len();
    log.push(vec![Delta::AddJobs(added)]);

    let mut batch = vec![Delta::RemoveJobs(vec![(r(8) as usize) % jobs_after_add])];
    batch.push(Delta::ShiftWindows((1 + r(9) % 3) as i64 * t as i64));
    log.push(batch);
    log
}

/// Commit the session's staged deltas and compare the commit against a
/// from-scratch solve of the materialized instance.
fn verify_session_commit(
    session: &mut ise_session::Session,
    commit_idx: usize,
) -> Result<(), Discrepancy> {
    let o = Oracle::Session;
    let materialized = session.instance().clone();
    let commit = match session.commit() {
        Ok(c) => c,
        Err(ise_session::SessionError::Solve(e)) => {
            // A non-verdict error (budget, cancellation, ...) is only a
            // session bug if the cold path does NOT fail the same way.
            return match solve(&materialized, &SolverOptions::default()) {
                Err(cold) if cold.to_string() == e.to_string() => Ok(()),
                other => Err(disc(
                    o,
                    format!(
                        "commit {commit_idx} failed with `{e}` but the cold solve \
                         returned {other:?}"
                    ),
                )),
            };
        }
        Err(e) => return Err(disc(o, format!("commit {commit_idx} failed: {e}"))),
    };
    let tier = commit.telemetry.tier;
    match (
        &commit.verdict,
        solve(&materialized, &SolverOptions::default()),
    ) {
        (ise_session::Verdict::Feasible { report, schedule }, Ok(cold)) => {
            validate(&materialized, schedule).map_err(|e| {
                disc(
                    o,
                    format!("commit {commit_idx} ({tier} tier) schedule is invalid: {e}"),
                )
            })?;
            // Cold commits run the exact pipeline `solve` runs, so the
            // schedule must be bit-identical. Basis/warm commits start the
            // simplex from a cached basis and may stop at a different
            // optimal vertex, which permutes calibration placement without
            // changing the count — compare the vertex-independent outputs.
            if tier == ise_session::ReuseTier::Cold && *schedule != cold.schedule {
                return Err(disc(
                    o,
                    format!(
                        "commit {commit_idx} (cold tier) schedule differs from the \
                         from-scratch solve despite an identical code path"
                    ),
                ));
            }
            if schedule.num_calibrations() != cold.schedule.num_calibrations() {
                return Err(disc(
                    o,
                    format!(
                        "commit {commit_idx} ({tier} tier) diverges from the cold solve: \
                         {} vs {} calibrations",
                        schedule.num_calibrations(),
                        cold.schedule.num_calibrations()
                    ),
                ));
            }
            let cold_obj = cold.long.as_ref().map(|l| l.fractional.objective);
            match (report.lp_objective, cold_obj) {
                (Some(inc), Some(base)) if !objectives_agree(inc, base) => {
                    return Err(disc(
                        o,
                        format!(
                            "commit {commit_idx} ({tier} tier) LP objective {inc} diverges \
                             from the cold solve's {base}"
                        ),
                    ));
                }
                (Some(_), Some(_)) | (None, None) => {}
                (inc, base) => {
                    return Err(disc(
                        o,
                        format!(
                            "commit {commit_idx} ({tier} tier) ran a different pipeline \
                             than the cold solve: LP objective {inc:?} vs {base:?}"
                        ),
                    ));
                }
            }
        }
        (ise_session::Verdict::Infeasible { .. }, Err(SchedError::Infeasible { .. })) => {}
        (ise_session::Verdict::Feasible { schedule, .. }, Err(e)) => {
            return Err(disc(
                o,
                format!(
                    "commit {commit_idx} ({tier} tier) found {} calibrations but the \
                     cold solve failed: {e}",
                    schedule.num_calibrations()
                ),
            ));
        }
        (ise_session::Verdict::Infeasible { reason }, Ok(cold)) => {
            return Err(disc(
                o,
                format!(
                    "commit {commit_idx} ({tier} tier) certified infeasibility ({reason}) \
                     but the cold solve found {} calibrations",
                    cold.schedule.num_calibrations()
                ),
            ));
        }
        (ise_session::Verdict::Infeasible { reason }, Err(e)) => {
            return Err(disc(
                o,
                format!(
                    "commit {commit_idx} certified infeasibility ({reason}) but the cold \
                     solve failed differently: {e}"
                ),
            ));
        }
    }
    Ok(())
}

fn check_session(instance: &Instance, opts: &OracleOptions) -> Result<(), Discrepancy> {
    let mut session = ise_session::Session::open(instance.clone());

    // Commit 0 is the opened instance itself: the session's cold path must
    // reproduce the from-scratch verdict bit for bit.
    verify_session_commit(&mut session, 0)?;

    for (i, batch) in session_delta_log(instance, opts.meta_seed)
        .iter()
        .enumerate()
    {
        for delta in batch {
            session.apply(delta).map_err(|e| {
                disc(
                    Oracle::Session,
                    format!(
                        "derived delta {delta:?} was rejected at commit {}: {e}",
                        i + 1
                    ),
                )
            })?;
        }
        verify_session_commit(&mut session, i + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_workloads::{uniform, WorkloadParams};

    #[test]
    fn oracle_names_round_trip() {
        let all = Oracle::parse_list("all").unwrap();
        assert_eq!(all, Oracle::ALL.to_vec());
        let two = Oracle::parse_list("exact,warm").unwrap();
        assert_eq!(two, vec![Oracle::Exact, Oracle::Warm]);
        assert!(Oracle::parse_list("frobnicate").is_err());
    }

    #[test]
    fn clean_workloads_pass_every_oracle() {
        for seed in 0..4u64 {
            let inst = uniform(
                &WorkloadParams {
                    jobs: 6,
                    machines: 2,
                    calib_len: 8,
                    horizon: 60,
                },
                seed,
            );
            let opts = OracleOptions {
                meta_seed: seed,
                ..OracleOptions::default()
            };
            if let Err(d) = check_instance(&inst, &Oracle::ALL, &opts) {
                panic!("seed {seed}: unexpected discrepancy: {d}");
            }
        }
    }
}
