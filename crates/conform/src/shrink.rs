//! Greedy delta-debugging instance shrinker.
//!
//! Given an instance that triggers a failure closure, repeatedly try
//! structure-preserving reductions — drop a job, remove a machine, shorten
//! the calibration length, shrink a processing time, tighten a window,
//! shift the origin to zero — and keep any reduction under which the
//! failure still reproduces. Passes loop to a fixpoint (or an evaluation
//! budget), so the emitted repro is 1-minimal with respect to the
//! reduction set: no single remaining reduction preserves the failure.

use ise_model::{normalize_origin, Instance, InstanceBuilder};

/// Outcome of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The smallest failing instance found.
    pub instance: Instance,
    /// Number of failure-closure evaluations spent.
    pub evals: usize,
    /// Whether the run stopped on the eval budget rather than a fixpoint.
    pub budget_exhausted: bool,
}

fn rebuild(machines: usize, calib_len: i64, jobs: &[(i64, i64, i64)]) -> Option<Instance> {
    if machines == 0 || calib_len < 1 {
        return None;
    }
    let mut b = InstanceBuilder::new(machines, calib_len);
    for &(r, d, p) in jobs {
        b.push(r, d, p);
    }
    b.build().ok()
}

fn decompose(instance: &Instance) -> (usize, i64, Vec<(i64, i64, i64)>) {
    (
        instance.machines(),
        instance.calib_len().ticks(),
        instance
            .jobs()
            .iter()
            .map(|j| (j.release.ticks(), j.deadline.ticks(), j.proc.ticks()))
            .collect(),
    )
}

/// Shrink `instance` while `fails` keeps returning `true`.
///
/// `fails` must be deterministic; it is the caller's closure over the
/// oracle stack (typically "the same oracle reports the same class of
/// discrepancy"). `max_evals` caps the number of closure invocations.
pub fn shrink(
    instance: &Instance,
    fails: impl Fn(&Instance) -> bool,
    max_evals: usize,
) -> ShrinkReport {
    let mut best = instance.clone();
    let mut evals = 0usize;
    let mut budget_exhausted = false;

    // Try one candidate; adopt it if the failure reproduces.
    let attempt = |best: &mut Instance, cand: Instance, evals: &mut usize| -> bool {
        if cand == *best {
            return false;
        }
        *evals += 1;
        if fails(&cand) {
            *best = cand;
            true
        } else {
            false
        }
    };

    'outer: loop {
        let mut progressed = false;

        // Pass 1: drop jobs, largest index first (later jobs are usually
        // the mutated ones; dropping from the back keeps ids stable).
        let (m, t, jobs) = decompose(&best);
        for i in (0..jobs.len()).rev() {
            if evals >= max_evals {
                budget_exhausted = true;
                break 'outer;
            }
            let mut fewer = jobs.clone();
            fewer.remove(i);
            if let Some(cand) = rebuild(m, t, &fewer) {
                if attempt(&mut best, cand, &mut evals) {
                    continue 'outer; // indices changed; restart the pass
                }
            }
        }

        // Pass 2: remove machines one at a time.
        loop {
            if evals >= max_evals {
                budget_exhausted = true;
                break 'outer;
            }
            let (m, t, jobs) = decompose(&best);
            if m <= 1 {
                break;
            }
            let adopted =
                rebuild(m - 1, t, &jobs).is_some_and(|cand| attempt(&mut best, cand, &mut evals));
            if adopted {
                progressed = true;
            } else {
                break;
            }
        }

        // Pass 3: shrink the calibration length — halving first, then
        // decrements — clamping processing times to stay <= T.
        loop {
            if evals >= max_evals {
                budget_exhausted = true;
                break 'outer;
            }
            let (m, t, jobs) = decompose(&best);
            if t <= 1 {
                break;
            }
            let mut reduced = false;
            for next_t in [t / 2, t - 1] {
                if next_t < 1 || next_t >= t {
                    continue;
                }
                let clamped: Vec<_> = jobs
                    .iter()
                    .map(|&(r, d, p)| (r, d, p.min(next_t)))
                    .collect();
                if let Some(cand) = rebuild(m, next_t, &clamped) {
                    if attempt(&mut best, cand, &mut evals) {
                        progressed = true;
                        reduced = true;
                        break;
                    }
                }
                if evals >= max_evals {
                    budget_exhausted = true;
                    break 'outer;
                }
            }
            if !reduced {
                break;
            }
        }

        // Pass 4: shrink processing times (halve, then decrement).
        let (m, t, jobs) = decompose(&best);
        for i in 0..jobs.len() {
            for next_p in [jobs[i].2 / 2, jobs[i].2 - 1] {
                if next_p < 1 || next_p >= jobs[i].2 {
                    continue;
                }
                if evals >= max_evals {
                    budget_exhausted = true;
                    break 'outer;
                }
                let mut smaller = jobs.clone();
                smaller[i].2 = next_p;
                if let Some(cand) = rebuild(m, t, &smaller) {
                    if attempt(&mut best, cand, &mut evals) {
                        continue 'outer; // job list changed; recompute
                    }
                }
            }
        }

        // Pass 5: tighten windows toward rigidity (halve the slack, then
        // drop it entirely).
        let (m, t, jobs) = decompose(&best);
        for i in 0..jobs.len() {
            let (r, d, p) = jobs[i];
            let slack = d - r - p;
            for kept in [slack / 2, 0] {
                if kept >= slack {
                    continue;
                }
                if evals >= max_evals {
                    budget_exhausted = true;
                    break 'outer;
                }
                let mut tighter = jobs.clone();
                tighter[i].1 = r + p + kept;
                if let Some(cand) = rebuild(m, t, &tighter) {
                    if attempt(&mut best, cand, &mut evals) {
                        continue 'outer;
                    }
                }
            }
        }

        // Pass 6: shift the time origin to zero (cosmetic, but makes the
        // committed repro readable).
        if evals < max_evals {
            let (normalized, delta) = normalize_origin(&best);
            if delta.ticks() != 0 && attempt(&mut best, normalized, &mut evals) {
                progressed = true;
            }
        }

        if !progressed {
            break;
        }
    }

    ShrinkReport {
        instance: best,
        evals,
        budget_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_workloads::{uniform, WorkloadParams};

    #[test]
    fn shrinks_a_job_count_predicate_to_the_minimum() {
        // Failure: "has more than 2 jobs on more than 1 machine".
        let inst = uniform(
            &WorkloadParams {
                jobs: 12,
                machines: 4,
                calib_len: 10,
                horizon: 80,
            },
            21,
        );
        let report = shrink(&inst, |i| i.len() > 2 && i.machines() > 1, 10_000);
        assert_eq!(report.instance.len(), 3, "1-minimal in jobs");
        assert_eq!(report.instance.machines(), 2, "1-minimal in machines");
        assert!(!report.budget_exhausted);
        assert!(report.evals > 0);
    }

    #[test]
    fn respects_the_eval_budget() {
        let inst = uniform(
            &WorkloadParams {
                jobs: 30,
                machines: 4,
                calib_len: 10,
                horizon: 200,
            },
            3,
        );
        let report = shrink(&inst, |i| i.len() > 1, 5);
        assert!(report.evals <= 5);
        assert!(report.budget_exhausted);
    }

    #[test]
    fn normalizes_the_origin() {
        let mut b = ise_model::InstanceBuilder::new(1, 5);
        b.push(1000, 1010, 3);
        let inst = b.build().unwrap();
        let report = shrink(&inst, |i| i.len() == 1, 1_000);
        assert_eq!(report.instance.jobs()[0].release.ticks(), 0);
    }

    #[test]
    fn non_failing_instance_is_returned_unchanged() {
        let inst = uniform(&WorkloadParams::default(), 1);
        let report = shrink(&inst, |_| false, 100);
        assert_eq!(report.instance, inst);
    }
}
