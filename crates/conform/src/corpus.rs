//! Minimized-repro corpus: emit shrunk failing instances as JSON and
//! replay a directory of them as a regression gate.
//!
//! Every discrepancy the fuzzer finds is shrunk and written to the corpus
//! as a self-describing [`Repro`] file. `ise fuzz --replay <dir>` re-runs
//! the oracle stack over every file, so once a bug is fixed its repro
//! keeps guarding against reintroduction — and while it is unfixed, CI
//! prints the minimized JSON instead of a 40-job fuzz case.

use crate::oracle::{check_instance, Oracle, OracleOptions};
use ise_model::Instance;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema version stamped into every repro file.
pub const REPRO_SCHEMA: u32 = 1;

/// A minimized failing instance plus the context needed to understand it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Repro {
    /// Repro file schema version ([`REPRO_SCHEMA`]).
    pub schema: u32,
    /// Name of the oracle that flagged the discrepancy.
    pub oracle: String,
    /// Human-readable description of the original disagreement.
    pub detail: String,
    /// Generator provenance of the unshrunk case (family + mutators).
    pub provenance: String,
    /// Fuzzer seed that produced the original case.
    pub seed: u64,
    /// Case index within that fuzz run.
    pub case: u64,
    /// Job count of the minimized instance (denormalized for grepping).
    pub jobs: usize,
    /// The minimized instance itself.
    pub instance: Instance,
}

/// FNV-1a over the serialized instance: a stable, content-addressed
/// filename so re-finding the same minimized bug overwrites rather than
/// accumulating duplicates.
fn content_hash(repro: &Repro) -> u64 {
    let body = serde_json::to_string(&repro.instance).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in repro.oracle.bytes().chain(body.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Write `repro` into `dir` (created if missing); returns the file path.
pub fn write_repro(dir: &Path, repro: &Repro) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!(
        "{}-{:016x}.json",
        repro.oracle,
        content_hash(repro)
    ));
    let json =
        serde_json::to_string_pretty(repro).map_err(|e| format!("cannot serialize repro: {e}"))?;
    let mut file =
        fs::File::create(&path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    file.write_all(json.as_bytes())
        .and_then(|_| file.write_all(b"\n"))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Load every `*.json` repro in `dir`, sorted by filename for stable
/// replay order. Unreadable or wrong-schema files are hard errors: a
/// corrupt corpus must fail the gate, not silently skip.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, Repro)>, String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read corpus {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let repro: Repro = serde_json::from_str(&text)
            .map_err(|e| format!("malformed repro {}: {e}", path.display()))?;
        if repro.schema != REPRO_SCHEMA {
            return Err(format!(
                "repro {} has schema {} (this binary supports {REPRO_SCHEMA})",
                path.display(),
                repro.schema
            ));
        }
        out.push((path, repro));
    }
    Ok(out)
}

/// One replayed corpus entry.
#[derive(Clone, Debug)]
pub struct ReplayCase {
    /// Path of the repro file.
    pub path: PathBuf,
    /// The repro's original discrepancy description.
    pub original: String,
    /// The discrepancy on replay, if the oracles still disagree.
    pub failure: Option<String>,
}

/// Result of replaying a corpus directory.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Every case replayed, in order.
    pub cases: Vec<ReplayCase>,
}

impl ReplayReport {
    /// Number of entries that still trip an oracle.
    pub fn failures(&self) -> usize {
        self.cases.iter().filter(|c| c.failure.is_some()).count()
    }

    /// True when every repro replays clean.
    pub fn all_clean(&self) -> bool {
        self.failures() == 0
    }
}

/// Replay every repro in `dir` against the oracle stack.
pub fn replay(
    dir: &Path,
    oracles: &[Oracle],
    opts: &OracleOptions,
) -> Result<ReplayReport, String> {
    let mut report = ReplayReport::default();
    for (path, repro) in load_corpus(dir)? {
        let failure = check_instance(&repro.instance, oracles, opts)
            .err()
            .map(|d| d.to_string());
        report.cases.push(ReplayCase {
            path,
            original: format!("[{}] {}", repro.oracle, repro.detail),
            failure,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_model::InstanceBuilder;

    fn sample_repro() -> Repro {
        let mut b = InstanceBuilder::new(1, 5);
        b.push(0, 10, 3);
        Repro {
            schema: REPRO_SCHEMA,
            oracle: "exact".into(),
            detail: "test detail".into(),
            provenance: "uniform+tighten".into(),
            seed: 42,
            case: 7,
            jobs: 1,
            instance: b.build().unwrap(),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ise-conform-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = tempdir("roundtrip");
        let repro = sample_repro();
        let path = write_repro(&dir, &repro).unwrap();
        assert!(path.exists());
        // Re-writing the same repro is idempotent (content-addressed name).
        let again = write_repro(&dir, &repro).unwrap();
        assert_eq!(path, again);
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.instance, repro.instance);
        assert_eq!(loaded[0].1.seed, 42);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_flags_nothing_on_a_clean_instance() {
        let dir = tempdir("clean");
        write_repro(&dir, &sample_repro()).unwrap();
        let report = replay(&dir, &Oracle::ALL, &OracleOptions::default()).unwrap();
        assert_eq!(report.cases.len(), 1);
        assert!(report.all_clean(), "{:?}", report.cases[0].failure);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_corpus_is_a_hard_error() {
        let dir = tempdir("malformed");
        fs::write(dir.join("bad.json"), "{ not json").unwrap();
        assert!(load_corpus(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_a_clean_error() {
        let err = load_corpus(Path::new("/nonexistent/ise-corpus")).unwrap_err();
        assert!(err.contains("cannot read corpus"));
    }
}
