//! # ise-conform — differential conformance harness
//!
//! The solver stack has many redundant ways to compute the same answer:
//! sparse vs dense simplex, warm vs cold bases, the batch engine vs a
//! direct call, the approximation pipeline vs exhaustive search, plus the
//! paper's own budgets (Theorem 12, Lemma 2, the lower-bound lattice).
//! This crate turns that redundancy into a test oracle: generate seeded
//! adversarial instances, run every path, and flag any disagreement that
//! the theory says cannot happen.
//!
//! The pieces:
//!
//! * [`oracle`] — the cross-check stack ([`Oracle`], [`check_instance`]).
//! * [`shrink`] — greedy delta-debugging minimizer for failing instances.
//! * [`corpus`] — JSON repro emit + replay (`ise fuzz --replay`).
//! * [`fuzz`] — the driver loop tying generation, checking, and shrinking
//!   together; the `ise fuzz` CLI is a thin wrapper around it.
//!
//! Case generation lives in `ise_workloads::adversarial_case`, shared with
//! the property tests, so a seed printed by the fuzzer reproduces the same
//! instance everywhere.

pub mod corpus;
pub mod oracle;
pub mod shrink;

pub use corpus::{load_corpus, replay, write_repro, ReplayReport, Repro, REPRO_SCHEMA};
pub use oracle::{check_instance, Discrepancy, Oracle, OracleOptions};
pub use shrink::{shrink, ShrinkReport};

use ise_workloads::{adversarial_case, family_case, WorkloadFamily, WorkloadParams};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Per-case seed derivation: a splitmix64 step over (run seed, case index)
/// so neighbouring cases are uncorrelated and any single case can be
/// re-run in isolation from just the pair printed in the report.
pub fn case_seed(run_seed: u64, case: u64) -> u64 {
    let mut z = run_seed
        .wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration for a fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Run seed; every case seed derives from it via [`case_seed`].
    pub seed: u64,
    /// Number of cases to attempt (the run may stop earlier on a
    /// discrepancy or on the time budget).
    pub cases: u64,
    /// Upper bound on jobs per generated case.
    pub max_jobs: usize,
    /// Upper bound on machines per generated case.
    pub max_machines: usize,
    /// Upper bound on the calibration length `T`.
    pub max_calib_len: i64,
    /// Upper bound on the generator horizon.
    pub max_horizon: i64,
    /// Which oracles to run.
    pub oracles: Vec<Oracle>,
    /// Pin case generation to one workload family (`None` draws from the
    /// full adversarial mix, including the Partition-hard construction).
    pub family: Option<WorkloadFamily>,
    /// Wall-clock budget; `None` runs all `cases`.
    pub time_budget: Option<Duration>,
    /// Shrink discrepancies before reporting (disable for raw triage).
    pub shrink: bool,
    /// Max failure-closure evaluations the shrinker may spend.
    pub shrink_evals: usize,
    /// Write the minimized repro into this corpus directory.
    pub corpus_dir: Option<PathBuf>,
    /// Oracle tuning knobs.
    pub oracle_opts: OracleOptions,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            cases: 200,
            max_jobs: 12,
            max_machines: 4,
            max_calib_len: 12,
            max_horizon: 120,
            oracles: Oracle::ALL.to_vec(),
            family: None,
            time_budget: None,
            shrink: true,
            shrink_evals: 4_000,
            corpus_dir: None,
            oracle_opts: OracleOptions::default(),
        }
    }
}

/// A discrepancy found by [`fuzz`], with its minimized witness.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The repro record (also written to the corpus when configured).
    pub repro: Repro,
    /// Path the repro was written to, when a corpus dir was configured.
    pub written_to: Option<PathBuf>,
    /// Shrinker evaluations spent minimizing the witness.
    pub shrink_evals: usize,
    /// Job count before shrinking.
    pub original_jobs: usize,
}

/// Summary of a fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Cases actually executed.
    pub cases_run: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// The first discrepancy, if any (the run stops at the first).
    pub failure: Option<FuzzFailure>,
    /// True when the run stopped on the time budget.
    pub timed_out: bool,
}

impl FuzzReport {
    /// True when every executed case passed every oracle.
    pub fn all_clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Run the fuzz loop: generate, check, and on the first discrepancy
/// shrink + record. `progress` is called after every clean case (the CLI
/// uses it for a heartbeat; pass `|_| ()` to ignore).
pub fn fuzz(config: &FuzzConfig, mut progress: impl FnMut(u64)) -> FuzzReport {
    let start = Instant::now();
    let params = WorkloadParams {
        jobs: config.max_jobs,
        machines: config.max_machines,
        calib_len: config.max_calib_len,
        horizon: config.max_horizon,
    };
    let mut cases_run = 0u64;
    let mut timed_out = false;

    for case in 0..config.cases {
        if let Some(budget) = config.time_budget {
            if start.elapsed() >= budget {
                timed_out = true;
                break;
            }
        }
        let seed = case_seed(config.seed, case);
        let (instance, provenance) = match config.family {
            Some(family) => family_case(family, &params, seed),
            None => adversarial_case(&params, seed),
        };
        let mut opts = config.oracle_opts.clone();
        opts.meta_seed = seed;
        cases_run += 1;
        let Err(first) = check_instance(&instance, &config.oracles, &opts) else {
            progress(case);
            continue;
        };

        // Shrink against "the same oracle still reports a discrepancy".
        // Anchoring on the oracle (not the exact message) keeps the
        // failure class stable while the detail text changes with size.
        let (minimized, evals) = if config.shrink {
            let anchor = first.oracle;
            let report = shrink::shrink(
                &instance,
                |cand| {
                    check_instance(cand, std::slice::from_ref(&anchor), &opts)
                        .err()
                        .map(|d| d.oracle == anchor)
                        .unwrap_or(false)
                },
                config.shrink_evals,
            );
            (report.instance, report.evals)
        } else {
            (instance.clone(), 0)
        };

        // Re-derive the detail from the minimized instance so the repro
        // text matches its own contents.
        let final_detail = match check_instance(&minimized, &config.oracles, &opts) {
            Err(d) if d.oracle == first.oracle => d.detail,
            Err(d) => d.to_string(),
            Ok(()) => first.detail.clone(),
        };

        let repro = Repro {
            schema: REPRO_SCHEMA,
            oracle: first.oracle.name().to_string(),
            detail: final_detail,
            provenance,
            seed: config.seed,
            case,
            jobs: minimized.len(),
            instance: minimized,
        };
        let written_to = config
            .corpus_dir
            .as_deref()
            .and_then(|dir| write_repro(dir, &repro).ok());
        return FuzzReport {
            cases_run,
            elapsed: start.elapsed(),
            failure: Some(FuzzFailure {
                original_jobs: instance.len(),
                repro,
                written_to,
                shrink_evals: evals,
            }),
            timed_out: false,
        };
    }

    FuzzReport {
        cases_run,
        elapsed: start.elapsed(),
        failure: None,
        timed_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_deterministic_and_spreads() {
        assert_eq!(case_seed(1, 2), case_seed(1, 2));
        assert_ne!(case_seed(1, 2), case_seed(1, 3));
        assert_ne!(case_seed(1, 2), case_seed(2, 2));
    }

    #[test]
    fn small_clean_run_passes_all_oracles() {
        let config = FuzzConfig {
            seed: 0xC0FFEE,
            cases: 12,
            max_jobs: 6,
            max_machines: 2,
            max_calib_len: 8,
            max_horizon: 60,
            ..FuzzConfig::default()
        };
        let report = fuzz(&config, |_| ());
        assert_eq!(report.cases_run, 12);
        if let Some(f) = &report.failure {
            panic!(
                "unexpected discrepancy: {} ({:?})",
                f.repro.detail, f.repro.instance
            );
        }
    }

    #[test]
    fn family_pinned_run_passes_all_oracles() {
        let config = FuzzConfig {
            seed: 0xBAD_1C0,
            cases: 8,
            family: Some(WorkloadFamily::IllConditioned),
            ..FuzzConfig::default()
        };
        let report = fuzz(&config, |_| ());
        assert_eq!(report.cases_run, 8);
        if let Some(f) = &report.failure {
            panic!(
                "unexpected discrepancy: {} ({:?})",
                f.repro.detail, f.repro.instance
            );
        }
    }

    #[test]
    fn time_budget_stops_the_run() {
        let config = FuzzConfig {
            seed: 7,
            cases: u64::MAX,
            time_budget: Some(Duration::from_millis(50)),
            ..FuzzConfig::default()
        };
        let report = fuzz(&config, |_| ());
        assert!(report.timed_out);
        assert!(report.cases_run < u64::MAX);
    }
}
