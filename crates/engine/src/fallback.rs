//! Greedy degradation path for timed-out solves.
//!
//! EDF with on-demand calibration and an open machine pool: jobs are taken
//! in deadline order and placed at the earliest feasible time across the
//! machines used so far, calibrating on demand; a fresh machine is opened
//! when no existing machine can meet the deadline. Because `p_j <= T` and
//! `r_j + p_j <= d_j` are instance invariants, a fresh machine calibrated
//! at `r_j` always works — so this never fails and runs in `O(n·m)` with no
//! LP and no search, which is what makes it a safe deadline fallback. No
//! approximation guarantee is claimed; the trade is explicit: a valid
//! schedule now instead of a near-optimal one late.

use ise_model::{Instance, Schedule, Time};

struct MachineState {
    /// End of the last placed job on this machine.
    busy_until: Time,
    /// Start of the machine's most recent calibration (covers `cal_start +
    /// T`); `None` before the first.
    cal_start: Option<Time>,
}

/// Produce a feasible schedule greedily. Infallible on any well-formed
/// [`Instance`]; pass the result through `ise_model::validate` in tests,
/// not in production paths.
pub fn greedy_fallback(instance: &Instance) -> Schedule {
    let t_len = instance.calib_len();
    let mut order: Vec<usize> = (0..instance.len()).collect();
    let jobs = instance.jobs();
    order.sort_by_key(|&i| (jobs[i].deadline, jobs[i].release, i));

    let mut machines: Vec<MachineState> = Vec::new();
    let mut schedule = Schedule::new();
    for &i in &order {
        let job = &jobs[i];
        // Earliest finish across existing machines; `None` while no
        // machine can meet the deadline.
        let mut best: Option<(Time, usize, Time, Option<Time>)> = None;
        for (mi, m) in machines.iter().enumerate() {
            let earliest = job.release.max(m.busy_until);
            let (start, new_cal) = match m.cal_start {
                // Reuse the current calibration when the whole execution
                // fits inside it.
                Some(cs) if earliest >= cs && earliest + job.proc <= cs + t_len => (earliest, None),
                // Otherwise calibrate afresh, after the previous
                // calibration (same-machine calibrations must not overlap).
                Some(cs) => {
                    let s = earliest.max(cs + t_len);
                    (s, Some(s))
                }
                None => (earliest, Some(earliest)),
            };
            let finish = start + job.proc;
            if finish > job.deadline {
                continue;
            }
            if best.is_none_or(|(bf, _, _, _)| finish < bf) {
                best = Some((finish, mi, start, new_cal));
            }
        }
        let (mi, start, new_cal) = match best {
            Some((_, mi, start, new_cal)) => (mi, start, new_cal),
            None => {
                // Open a machine: start at release under a fresh
                // calibration. Always feasible by the instance invariants.
                machines.push(MachineState {
                    busy_until: Time(i64::MIN / 4),
                    cal_start: None,
                });
                (machines.len() - 1, job.release, Some(job.release))
            }
        };
        if let Some(cs) = new_cal {
            schedule.calibrate(mi, cs);
            machines[mi].cal_start = Some(cs);
        }
        schedule.place(job.id, mi, start);
        machines[mi].busy_until = start + job.proc;
    }
    schedule
}

/// Like [`greedy_fallback`], with empty calibrations trimmed (there are
/// none by construction — every calibration is opened for a job — but the
/// solver option is honored for response parity).
pub fn greedy_fallback_trimmed(instance: &Instance, trim: bool) -> Schedule {
    let mut s = greedy_fallback(instance);
    if trim {
        s.trim_empty_calibrations(instance.calib_len());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_model::validate;
    use ise_workloads::{uniform, WorkloadParams};

    #[test]
    fn valid_on_random_instances() {
        for seed in 0..20 {
            let params = WorkloadParams {
                jobs: 30,
                machines: 3,
                calib_len: 10,
                horizon: 150,
            };
            let inst = uniform(&params, seed);
            let s = greedy_fallback(&inst);
            validate(&inst, &s).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn tight_jobs_each_get_a_machine() {
        // Two zero-slack overlapping jobs force two machines.
        let inst = Instance::new([(0, 5, 5), (2, 7, 5)], 1, 5).unwrap();
        let s = greedy_fallback(&inst);
        validate(&inst, &s).unwrap();
        assert_eq!(s.machines_used(), 2);
    }

    #[test]
    fn shares_calibrations_when_loose() {
        // Two tiny jobs with roomy windows share one calibration.
        let inst = Instance::new([(0, 30, 2), (0, 30, 2)], 1, 10).unwrap();
        let s = greedy_fallback(&inst);
        validate(&inst, &s).unwrap();
        assert_eq!(s.num_calibrations(), 1);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new([], 1, 10).unwrap();
        let s = greedy_fallback(&inst);
        assert_eq!(s.num_calibrations(), 0);
        assert!(s.placements.is_empty());
    }
}
