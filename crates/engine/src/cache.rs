//! Sharded LRU result cache.
//!
//! Keys are canonical 64-bit hashes of `(Instance, solve options)` computed
//! by [`cache_key`]; values are `Arc`s of the cached solve so hits are
//! returned without cloning schedules. The cache is split into shards, each
//! behind its own mutex, so workers contend only when they land on the same
//! shard.
//!
//! LRU bookkeeping is a monotone per-shard tick: each entry remembers the
//! tick of its last touch, a `BTreeMap<tick, key>` indexes entries by
//! recency, and eviction removes the smallest tick. All operations are
//! `O(log n)` in the shard size.

use ise_model::Instance;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Canonical cache key for an instance + the solve options that affect the
/// result. Uses `DefaultHasher`, which is deterministic within a process
/// (fixed SipHash keys), so identical requests always collide — exactly
/// what a result cache wants.
pub fn cache_key(instance: &Instance, opts_fingerprint: &impl Hash) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    instance.machines().hash(&mut h);
    instance.calib_len().ticks().hash(&mut h);
    for job in instance.jobs() {
        job.release.ticks().hash(&mut h);
        job.deadline.ticks().hash(&mut h);
        job.proc.ticks().hash(&mut h);
    }
    opts_fingerprint.hash(&mut h);
    h.finish()
}

/// Key for the warm-start basis cache. Deliberately **excludes** the
/// machine count: the machine budget only changes the right-hand side of
/// the TISE LP, not its row/column structure, so an optimal basis from one
/// budget warm-starts the same jobs at any other budget. Requests that
/// differ only in `machines` therefore share a basis entry.
pub fn basis_key(instance: &Instance, speed: i64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    instance.calib_len().ticks().hash(&mut h);
    for job in instance.jobs() {
        job.release.ticks().hash(&mut h);
        job.deadline.ticks().hash(&mut h);
        job.proc.ticks().hash(&mut h);
    }
    speed.hash(&mut h);
    h.finish()
}

struct Entry<V> {
    value: Arc<V>,
    tick: u64,
}

struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    by_tick: BTreeMap<u64, u64>,
    tick: u64,
}

impl<V> Shard<V> {
    fn touch(&mut self, key: u64) -> Option<Arc<V>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(&key)?;
        self.by_tick.remove(&entry.tick);
        entry.tick = tick;
        self.by_tick.insert(tick, key);
        Some(Arc::clone(&entry.value))
    }

    /// Returns the number of entries evicted to stay within `capacity`.
    fn insert(&mut self, key: u64, value: Arc<V>, capacity: usize) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.map.insert(key, Entry { value, tick }) {
            self.by_tick.remove(&old.tick);
        }
        self.by_tick.insert(tick, key);
        let mut evicted = 0;
        while self.map.len() > capacity {
            let (&oldest, &victim) = self.by_tick.iter().next().expect("nonempty over capacity");
            self.by_tick.remove(&oldest);
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A sharded LRU map from 64-bit keys to shared values.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
    evictions: std::sync::atomic::AtomicU64,
}

impl<V> ShardedLru<V> {
    /// A cache holding roughly `capacity` entries across `shards` shards
    /// (each shard gets `ceil(capacity / shards)`).
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<V> {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        by_tick: BTreeMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            evictions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Lock a shard, recovering from poisoning. A worker that panics while
    /// holding a shard lock may have left `map` and `by_tick` out of sync,
    /// so recovery drops the shard's contents (a cache may always forget)
    /// and clears the poison flag rather than cascading the panic into
    /// every other worker that touches the shard.
    fn shard_guard(mutex: &Mutex<Shard<V>>) -> std::sync::MutexGuard<'_, Shard<V>> {
        match mutex.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.map.clear();
                guard.by_tick.clear();
                mutex.clear_poison();
                guard
            }
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        Self::shard_guard(self.shard(key)).touch(key)
    }

    /// Insert (or refresh) a value, evicting least-recently-used entries
    /// from the shard if it overflows.
    pub fn insert(&self, key: u64, value: Arc<V>) {
        let evicted =
            Self::shard_guard(self.shard(key)).insert(key, value, self.per_shard_capacity);
        if evicted > 0 {
            self.evictions
                .fetch_add(evicted, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Total LRU evictions since construction (capacity overflows only;
    /// poison-recovery drops are not counted).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total entries across shards (racy; for metrics only).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::shard_guard(s).map.len())
            .sum()
    }

    /// Whether the cache holds no entries (racy; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let c: ShardedLru<u32> = ShardedLru::new(8, 2);
        assert!(c.get(1).is_none());
        c.insert(1, Arc::new(10));
        assert_eq!(*c.get(1).unwrap(), 10);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Single shard, capacity 2.
        let c: ShardedLru<u32> = ShardedLru::new(2, 1);
        c.insert(1, Arc::new(1));
        c.insert(2, Arc::new(2));
        c.get(1); // refresh 1: now 2 is least-recent
        c.insert(3, Arc::new(3));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn reinsert_updates_value() {
        let c: ShardedLru<u32> = ShardedLru::new(4, 1);
        c.insert(1, Arc::new(1));
        c.insert(1, Arc::new(9));
        assert_eq!(*c.get(1).unwrap(), 9);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_counter_tracks_capacity_overflow() {
        let c: ShardedLru<u32> = ShardedLru::new(2, 1);
        c.insert(1, Arc::new(1));
        c.insert(2, Arc::new(2));
        assert_eq!(c.evictions(), 0);
        c.insert(3, Arc::new(3));
        assert_eq!(c.evictions(), 1);
        // Refreshing an existing key evicts nothing.
        c.insert(3, Arc::new(30));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn cache_key_distinguishes_options_and_instances() {
        let a = Instance::new([(0, 30, 4)], 1, 10).unwrap();
        let b = Instance::new([(0, 30, 5)], 1, 10).unwrap();
        assert_eq!(cache_key(&a, &"x"), cache_key(&a, &"x"));
        assert_ne!(cache_key(&a, &"x"), cache_key(&b, &"x"));
        assert_ne!(cache_key(&a, &"x"), cache_key(&a, &"y"));
    }

    #[test]
    fn recovers_from_poisoned_shard() {
        let c: ShardedLru<u32> = ShardedLru::new(8, 1);
        c.insert(1, Arc::new(1));
        // Poison the single shard by panicking while holding its lock.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = c.shards[0].lock().unwrap();
            panic!("worker dies mid-mutation");
        }));
        assert!(result.is_err());
        assert!(c.shards[0].is_poisoned());
        // The cache stays usable: recovery drops the (possibly desynced)
        // contents, clears the poison, and subsequent ops work normally.
        assert!(c.get(1).is_none());
        assert!(!c.shards[0].is_poisoned());
        c.insert(2, Arc::new(2));
        assert_eq!(*c.get(2).unwrap(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn basis_key_ignores_machine_count() {
        let one = Instance::new([(0, 30, 4), (0, 40, 6)], 1, 10).unwrap();
        let two = Instance::new([(0, 30, 4), (0, 40, 6)], 2, 10).unwrap();
        let other = Instance::new([(0, 30, 5), (0, 40, 6)], 1, 10).unwrap();
        assert_eq!(basis_key(&one, 1), basis_key(&two, 1));
        assert_ne!(basis_key(&one, 1), basis_key(&other, 1));
        assert_ne!(basis_key(&one, 1), basis_key(&one, 2));
    }
}
