//! The worker pool: accepts [`EngineRequest`]s, runs them on a fixed set
//! of threads, caches results, enforces per-request deadlines, and
//! degrades to the greedy fallback when a deadline expires.
//!
//! Lifecycle: [`Engine::new`] spawns the workers; [`Engine::submit`]
//! enqueues a request and returns a [`ResponseSlot`] the caller waits on;
//! [`Engine::shutdown`] (also run on drop) closes the queue, lets workers
//! drain it, and joins them.

use crate::cache::{basis_key, cache_key, ShardedLru};
use crate::fallback::greedy_fallback_trimmed;
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushError};
use ise_model::{Instance, Schedule};
use ise_obs::PhaseTimings;
use ise_sched::cancel::CancelToken;
use ise_sched::{solve_with_speed, LpTelemetry, MmBackend, SchedError, SolverOptions};
use ise_session::{DeltaMsg, Session, SessionError, SessionTelemetry, Verdict};
use ise_simplex::Basis;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a producer does when the request queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for a free slot (default).
    #[default]
    Block,
    /// Fail the submit with [`SubmitError::QueueFull`].
    Reject,
}

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads.
    pub workers: usize,
    /// Bounded request-queue capacity.
    pub queue_capacity: usize,
    /// Result-cache capacity (entries, across all shards).
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Behavior when the queue is full.
    pub backpressure: Backpressure,
    /// Deadline applied to requests that do not carry their own
    /// `timeout_ms`. `None` means no deadline.
    pub default_timeout: Option<Duration>,
    /// Rescue timed-out solves with the greedy fallback instead of
    /// returning a timeout error.
    pub fallback_on_timeout: bool,
    /// Run every request under a per-request [`ise_obs::Trace`] and attach
    /// the drained per-phase timings to the response (`phases` field).
    pub trace_phases: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 4,
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            backpressure: Backpressure::Block,
            default_timeout: None,
            fallback_on_timeout: true,
            trace_phases: true,
        }
    }
}

/// One solve request, as carried on the wire (JSONL) and in the queue.
#[derive(Clone, Debug, Deserialize)]
pub struct EngineRequest {
    /// Caller-chosen correlation id, echoed in the response. Defaults to
    /// the request's position when omitted in a JSONL stream.
    pub id: Option<u64>,
    /// The instance to solve. Required for plain solve requests and for
    /// the `open` session command; other session commands omit it.
    pub instance: Option<Instance>,
    /// Per-request deadline in milliseconds; overrides the engine default.
    pub timeout_ms: Option<u64>,
    /// MM backend name (`auto`, `exact`, `greedy`, `unit`, `lp-round`,
    /// `portfolio`); engine default is `auto`.
    pub mm: Option<String>,
    /// Trim empty calibrations from the result.
    pub trim: Option<bool>,
    /// Speed augmentation factor (`>= 1`); default 1.
    pub speed: Option<i64>,
    /// Session command (`open`/`delta`/`solve`/`close`); a request that
    /// carries one is routed to the session registry instead of the
    /// worker pool.
    pub session: Option<SessionCmd>,
}

impl EngineRequest {
    /// A plain request for `instance` with engine defaults.
    pub fn new(instance: Instance) -> EngineRequest {
        EngineRequest {
            id: None,
            instance: Some(instance),
            timeout_ms: None,
            mm: None,
            trim: None,
            speed: None,
            session: None,
        }
    }
}

/// One session command, as carried on the wire: `{"session": {"op":
/// "open"}, "instance": {...}}` opens a session (the response carries the
/// assigned `sid`); `{"session": {"op": "delta", "sid": N, "delta":
/// {...}}}` stages a typed delta; `{"session": {"op": "solve", "sid": N}}`
/// commits the staged deltas and solves incrementally; `{"session": {"op":
/// "close", "sid": N}}` discards the session.
#[derive(Clone, Debug, Default, Deserialize)]
pub struct SessionCmd {
    /// `open`, `delta`, `solve`, or `close`.
    pub op: String,
    /// Target session id (from the `open` response); required for every op
    /// but `open`.
    pub sid: Option<u64>,
    /// The delta to stage, for the `delta` op (see
    /// [`ise_session::DeltaMsg`] for the format).
    pub delta: Option<DeltaMsg>,
}

/// Session state echoed in session-command responses.
#[derive(Clone, Debug, Serialize)]
pub struct SessionInfo {
    /// The session id ([`SESSION_ID_BASE`]-namespaced).
    pub sid: u64,
    /// The command this response answers.
    pub op: String,
    /// Staged (uncommitted) deltas after the command.
    pub staged: u64,
    /// Commits performed so far.
    pub commits: u64,
    /// Per-commit reuse telemetry (`solve` responses only).
    pub telemetry: Option<SessionTelemetry>,
}

/// Response status values (`status` field of [`EngineResponse`]).
pub mod status {
    /// Solved by the full pipeline (possibly from cache).
    pub const OK: &str = "ok";
    /// Deadline expired; the greedy fallback produced the schedule.
    pub const FALLBACK: &str = "fallback";
    /// No schedule: solver error, timeout with fallback disabled, or
    /// rejected submit.
    pub const ERROR: &str = "error";
    /// Session `solve` only: the materialized instance is certifiably
    /// infeasible. The commit still advanced the session.
    pub const INFEASIBLE: &str = "infeasible";
}

/// Session scope of streams that are not connection-pinned (the stdin /
/// file serve path and direct [`Engine::session_command`] callers).
/// Sessions opened under the global scope are never force-closed by
/// [`Engine::close_scope`].
pub const GLOBAL_SCOPE: u64 = 0;

/// First session id the engine assigns (`2^62`). Session ids live in
/// `[2^62, 2^63)` — disjoint from both explicit request ids (`< 2^63` but
/// chosen by callers, who should stay below this too only if they want to
/// avoid confusion; the engine never collides sids with request ids
/// because sids are a separate field) and the serve fallback-id range
/// (`>= 2^63`).
pub const SESSION_ID_BASE: u64 = 1 << 62;

/// One solve response, as written to the JSONL output.
#[derive(Clone, Debug, Serialize)]
pub struct EngineResponse {
    /// Echo of the request id.
    pub id: u64,
    /// `"ok"`, `"fallback"`, or `"error"` (see [`status`]).
    pub status: String,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Whether the solve hit its deadline (true for fallback and
    /// timeout-error responses).
    pub timed_out: bool,
    /// Calibration count of the schedule, when one exists.
    pub calibrations: Option<u64>,
    /// The schedule, when one exists.
    pub schedule: Option<Schedule>,
    /// Error message for `"error"` responses.
    pub error: Option<String>,
    /// Wall-clock microseconds spent producing this response (0 for cache
    /// hits).
    pub solve_us: u64,
    /// LP-solver telemetry (iterations, refactorizations, build/solve
    /// wall-time, warm-start flag), when the long-window pipeline ran.
    pub lp: Option<LpTelemetry>,
    /// Per-phase wall-time breakdown (queue wait, cache probe, solver
    /// phases), when [`EngineConfig::trace_phases`] is on.
    pub phases: Option<PhaseTimings>,
    /// Session state, for responses to session commands.
    pub session: Option<SessionInfo>,
}

/// Why [`Engine::submit`] refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// `Reject` backpressure and the queue is at capacity.
    QueueFull,
    /// The engine is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue full"),
            SubmitError::ShuttingDown => write!(f, "engine shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One-shot slot the engine fills with the response.
#[derive(Clone)]
pub struct ResponseSlot {
    inner: Arc<(Mutex<Option<EngineResponse>>, Condvar)>,
}

impl ResponseSlot {
    fn new() -> ResponseSlot {
        ResponseSlot {
            inner: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    fn fill(&self, response: EngineResponse) {
        let (lock, cv) = &*self.inner;
        *lock.lock().unwrap() = Some(response);
        cv.notify_all();
    }

    /// Block until the response arrives.
    pub fn wait(&self) -> EngineResponse {
        let (lock, cv) = &*self.inner;
        let mut guard = lock.lock().unwrap();
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = cv.wait(guard).unwrap();
        }
    }

    /// Non-blocking poll; consumes the response if present.
    pub fn try_take(&self) -> Option<EngineResponse> {
        self.inner.0.lock().unwrap().take()
    }
}

struct QueuedJob {
    request: EngineRequest,
    id: u64,
    slot: ResponseSlot,
    enqueued: Instant,
}

struct Shared {
    queue: BoundedQueue<QueuedJob>,
    cache: ShardedLru<CachedSolve>,
    /// Warm-start bases keyed by [`basis_key`] (jobs + calibration
    /// length + speed, *not* machines), so duplicate-shaped requests,
    /// including machine-budget sweeps over one job set, skip simplex
    /// phase 1.
    bases: ShardedLru<Basis>,
    metrics: EngineMetrics,
    config: EngineConfig,
}

struct CachedSolve {
    schedule: Schedule,
    calibrations: usize,
    lp: Option<LpTelemetry>,
}

/// The batch-solving engine. See the module docs for the lifecycle.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: std::sync::atomic::AtomicU64,
    /// Open incremental sessions, keyed by sid. Session commands run on
    /// the caller's thread (they are ordered stream state, not pooled
    /// work), serialized by this lock.
    sessions: Mutex<HashMap<u64, ScopedSession>>,
    next_session: std::sync::atomic::AtomicU64,
    next_scope: std::sync::atomic::AtomicU64,
}

/// A session plus the scope (connection) that owns it. Sessions are
/// pinned: commands from another scope are refused, and closing the
/// scope force-closes the session.
struct ScopedSession {
    session: Session,
    scope: u64,
}

impl Engine {
    /// Spawn `config.workers` worker threads and return the handle.
    pub fn new(config: EngineConfig) -> Engine {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            cache: ShardedLru::new(config.cache_capacity.max(1), config.cache_shards),
            bases: ShardedLru::new(config.cache_capacity.max(1), config.cache_shards),
            metrics: EngineMetrics::default(),
            config: config.clone(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ise-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine {
            shared,
            workers,
            next_id: std::sync::atomic::AtomicU64::new(0),
            sessions: Mutex::new(HashMap::new()),
            next_session: std::sync::atomic::AtomicU64::new(0),
            next_scope: std::sync::atomic::AtomicU64::new(GLOBAL_SCOPE + 1),
        }
    }

    /// Submit a request. Returns a slot that will receive the response;
    /// blocks or rejects on a full queue per the configured backpressure.
    pub fn submit(&self, request: EngineRequest) -> Result<ResponseSlot, SubmitError> {
        let id = request.id.unwrap_or_else(|| {
            self.next_id
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        });
        let slot = ResponseSlot::new();
        let job = QueuedJob {
            id,
            request,
            slot: slot.clone(),
            enqueued: Instant::now(),
        };
        let pushed = match self.shared.config.backpressure {
            Backpressure::Block => self.shared.queue.push_blocking(job),
            Backpressure::Reject => self.shared.queue.try_push(job),
        };
        match pushed {
            Ok(()) => {
                EngineMetrics::inc(&self.shared.metrics.requests);
                Ok(slot)
            }
            Err((_, PushError::Full)) => {
                EngineMetrics::inc(&self.shared.metrics.rejected);
                Err(SubmitError::QueueFull)
            }
            Err((_, PushError::Closed)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Live metrics counters, with the gauge fields (`cache_evictions`,
    /// `basis_cache_entries`, `sessions_open`) read from live engine
    /// state.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.shared.metrics.snapshot();
        snap.cache_evictions = self.shared.cache.evictions() + self.shared.bases.evictions();
        snap.basis_cache_entries = self.shared.bases.len() as u64;
        snap.sessions_open = self.lock_sessions().len() as u64;
        snap
    }

    /// Lock the session registry, recovering from poisoning. Sessions are
    /// transactional (a failed or panicking commit rolls back), so a
    /// poisoned lock does not imply corrupt sessions — recovery just
    /// clears the flag and keeps them.
    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, ScopedSession>> {
        match self.sessions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.sessions.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Allocate a fresh session scope. Network connections call this once
    /// on accept; sessions they open are pinned to the scope and reaped by
    /// [`Engine::close_scope`] on disconnect.
    pub fn new_scope(&self) -> u64 {
        self.next_scope
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Force-close every session owned by `scope`, returning how many were
    /// closed. A no-op for [`GLOBAL_SCOPE`]: globally-scoped sessions have
    /// no connection to die with.
    pub fn close_scope(&self, scope: u64) -> usize {
        if scope == GLOBAL_SCOPE {
            return 0;
        }
        let mut sessions = self.lock_sessions();
        let before = sessions.len();
        sessions.retain(|_, s| s.scope != scope);
        before - sessions.len()
    }

    /// [`Engine::session_command_scoped`] under the global scope.
    pub fn session_command(&self, id: u64, request: &EngineRequest) -> EngineResponse {
        self.session_command_scoped(id, request, GLOBAL_SCOPE)
    }

    /// Execute a session command (`open`/`delta`/`solve`/`close`) on the
    /// calling thread. Session state is ordered — a delta must precede the
    /// solve that should see it — so these commands bypass the worker pool
    /// and run synchronously. Sessions opened under `scope` belong to it:
    /// commands naming a sid owned by a different scope get an error
    /// response, so one TCP connection can never read or mutate another
    /// connection's session state.
    pub fn session_command_scoped(
        &self,
        id: u64,
        request: &EngineRequest,
        scope: u64,
    ) -> EngineResponse {
        let error = |message: String, session: Option<SessionInfo>| {
            EngineMetrics::inc(&self.shared.metrics.errors);
            let mut r = session_response(id, status::ERROR, session);
            r.error = Some(message);
            r
        };
        let Some(cmd) = &request.session else {
            return error("not a session request".to_string(), None);
        };
        let info = |sid: u64, session: &Session| SessionInfo {
            sid,
            op: cmd.op.clone(),
            staged: session.staged() as u64,
            commits: session.commits() as u64,
            telemetry: None,
        };
        match cmd.op.as_str() {
            "open" => {
                let Some(instance) = &request.instance else {
                    return error("session open requires `instance`".to_string(), None);
                };
                if request.speed.is_some_and(|s| s != 1) {
                    return error(
                        "sessions solve at speed 1; `speed` is not supported".to_string(),
                        None,
                    );
                }
                let mm = match parse_backend(request.mm.as_deref().unwrap_or("auto")) {
                    Ok(mm) => mm,
                    Err(message) => return error(message, None),
                };
                let opts = SolverOptions {
                    mm,
                    trim_empty_calibrations: request.trim.unwrap_or(false),
                    ..SolverOptions::default()
                };
                let sid = SESSION_ID_BASE
                    + self
                        .next_session
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let session = Session::with_options(instance.clone(), opts);
                let i = info(sid, &session);
                self.lock_sessions()
                    .insert(sid, ScopedSession { session, scope });
                session_response(id, status::OK, Some(i))
            }
            "delta" => {
                let Some(sid) = cmd.sid else {
                    return error("session delta requires `sid`".to_string(), None);
                };
                let Some(msg) = &cmd.delta else {
                    return error("session delta requires `delta`".to_string(), None);
                };
                let delta = match msg.decode() {
                    Ok(d) => d,
                    Err(e) => return error(e.to_string(), None),
                };
                let mut sessions = self.lock_sessions();
                let Some(entry) = sessions.get_mut(&sid) else {
                    return error(format!("unknown session id {sid}"), None);
                };
                if entry.scope != scope {
                    return error(
                        format!("session {sid} is pinned to another connection"),
                        None,
                    );
                }
                let session = &mut entry.session;
                match session.apply(&delta) {
                    Ok(()) => {
                        let i = info(sid, session);
                        session_response(id, status::OK, Some(i))
                    }
                    Err(e) => {
                        let i = info(sid, session);
                        error(e.to_string(), Some(i))
                    }
                }
            }
            "solve" => {
                let Some(sid) = cmd.sid else {
                    return error("session solve requires `sid`".to_string(), None);
                };
                let mut sessions = self.lock_sessions();
                let Some(entry) = sessions.get_mut(&sid) else {
                    return error(format!("unknown session id {sid}"), None);
                };
                if entry.scope != scope {
                    return error(
                        format!("session {sid} is pinned to another connection"),
                        None,
                    );
                }
                let session = &mut entry.session;
                match session.commit() {
                    Ok(commit) => {
                        let tier_counter = match commit.telemetry.tier {
                            ise_session::ReuseTier::Basis => {
                                &self.shared.metrics.session_reuse_basis
                            }
                            ise_session::ReuseTier::Warm => &self.shared.metrics.session_reuse_warm,
                            ise_session::ReuseTier::Cold => &self.shared.metrics.session_reuse_cold,
                        };
                        EngineMetrics::inc(tier_counter);
                        self.shared
                            .metrics
                            .solve_time
                            .record(Duration::from_micros(commit.telemetry.solve_us));
                        let mut i = info(sid, session);
                        let solve_us = commit.telemetry.solve_us;
                        i.telemetry = Some(commit.telemetry);
                        let mut r = match commit.verdict {
                            Verdict::Feasible { report, schedule } => {
                                let mut r = session_response(id, status::OK, Some(i));
                                r.calibrations = Some(report.stats.calibrations as u64);
                                if let Some(t) = &report.lp {
                                    record_lp_numerics(&self.shared.metrics, t);
                                }
                                r.lp = report.lp;
                                r.schedule = Some(schedule);
                                r
                            }
                            Verdict::Infeasible { reason } => {
                                let mut r = session_response(id, status::INFEASIBLE, Some(i));
                                r.error = Some(reason);
                                r
                            }
                        };
                        r.solve_us = solve_us;
                        r
                    }
                    Err(e @ SessionError::InvalidDelta(_))
                    | Err(e @ SessionError::Solve(_))
                    | Err(e @ SessionError::SolvePanicked) => {
                        let i = info(sid, session);
                        error(e.to_string(), Some(i))
                    }
                }
            }
            "close" => {
                let Some(sid) = cmd.sid else {
                    return error("session close requires `sid`".to_string(), None);
                };
                let mut sessions = self.lock_sessions();
                match sessions.get(&sid) {
                    Some(entry) if entry.scope != scope => error(
                        format!("session {sid} is pinned to another connection"),
                        None,
                    ),
                    Some(_) => {
                        let entry = sessions.remove(&sid).expect("present above");
                        let i = info(sid, &entry.session);
                        session_response(id, status::OK, Some(i))
                    }
                    None => error(format!("unknown session id {sid}"), None),
                }
            }
            other => error(
                format!("unknown session op `{other}` (expected open, delta, solve, or close)"),
                None,
            ),
        }
    }

    /// Record time spent serializing a response on behalf of the caller
    /// (the serve loop, which owns the writer side the engine never sees).
    pub fn record_serialize_time(&self, d: Duration) {
        self.shared.metrics.serialize_time.record(d);
    }

    /// Close the queue, drain outstanding requests, and join the workers.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    // One simplex workspace per worker: every solve this worker runs
    // recycles the same pivot-loop scratch, so steady-state serving does
    // no per-iteration heap allocation. Never shared across workers, so
    // the handle's mutex is uncontended.
    let workspace = ise_simplex::WorkspaceHandle::new();
    while let Some(job) = shared.queue.pop() {
        let wait = job.enqueued.elapsed();
        shared.metrics.queue_wait.record(wait);
        let trace = shared
            .config
            .trace_phases
            .then(|| ise_obs::Trace::new(TRACE_CAPACITY));
        let mut response = {
            let _guard = trace.as_ref().map(ise_obs::Trace::install);
            ise_obs::Span::record("engine.queue_wait", wait);
            handle_request(shared, &workspace, job.id, &job.request)
        };
        if let Some(trace) = trace {
            let phases = PhaseTimings::from_records(&trace.drain());
            if !phases.is_empty() {
                response.phases = Some(phases);
            }
        }
        EngineMetrics::inc(&shared.metrics.completed);
        job.slot.fill(response);
    }
}

/// Span capacity of a per-request trace. One request emits a handful of
/// engine spans plus the solver-phase spans — well under this; overflow
/// just drops spans rather than blocking a worker.
const TRACE_CAPACITY: usize = 256;

fn parse_backend(name: &str) -> Result<MmBackend, String> {
    name.parse::<MmBackend>()
        .map_err(|()| format!("unknown mm backend {name:?}"))
}

/// Skeleton response for session commands; callers fill in the
/// command-specific fields.
fn session_response(id: u64, status: &str, session: Option<SessionInfo>) -> EngineResponse {
    EngineResponse {
        id,
        status: status.to_string(),
        cached: false,
        timed_out: false,
        calibrations: None,
        schedule: None,
        error: None,
        solve_us: 0,
        lp: None,
        phases: None,
        session,
    }
}

fn handle_request(
    shared: &Shared,
    workspace: &ise_simplex::WorkspaceHandle,
    id: u64,
    request: &EngineRequest,
) -> EngineResponse {
    let error = |message: String, timed_out: bool| {
        EngineMetrics::inc(&shared.metrics.errors);
        EngineResponse {
            id,
            status: status::ERROR.to_string(),
            cached: false,
            timed_out,
            calibrations: None,
            schedule: None,
            error: Some(message),
            solve_us: 0,
            lp: None,
            phases: None,
            session: None,
        }
    };

    let Some(instance) = &request.instance else {
        return error("request has no `instance`".to_string(), false);
    };
    let mm = match parse_backend(request.mm.as_deref().unwrap_or("auto")) {
        Ok(mm) => mm,
        Err(message) => return error(message, false),
    };
    let trim = request.trim.unwrap_or(false);
    let speed = request.speed.unwrap_or(1);
    if speed < 1 {
        return error(format!("speed must be >= 1, got {speed}"), false);
    }

    // Cache lookup under the canonical key. Only deterministic inputs go
    // into the key — the timeout does not, so a request that previously
    // completed without a deadline can satisfy a tightly-budgeted
    // duplicate.
    let key = cache_key(instance, &(mm, trim, speed));
    let probe_span = ise_obs::Span::enter("engine.cache_probe");
    let probed = shared.cache.get(key);
    drop(probe_span);
    if let Some(hit) = probed {
        EngineMetrics::inc(&shared.metrics.cache_hits);
        return EngineResponse {
            id,
            status: status::OK.to_string(),
            cached: true,
            timed_out: false,
            calibrations: Some(hit.calibrations as u64),
            schedule: Some(hit.schedule.clone()),
            error: None,
            solve_us: 0,
            lp: hit.lp,
            phases: None,
            session: None,
        };
    }
    EngineMetrics::inc(&shared.metrics.cache_misses);

    // Warm-start lookup: a prior solve of the same jobs/calibration
    // length/speed (at any machine budget) left its optimal LP basis
    // behind; reusing it lets the long-window LP skip phase 1. An
    // incompatible basis is ignored by the solver, so a stale hit only
    // costs one refactorization attempt.
    let bkey = basis_key(instance, speed);
    let warm_basis = shared.bases.get(bkey);
    if warm_basis.is_some() {
        EngineMetrics::inc(&shared.metrics.basis_hits);
    } else {
        EngineMetrics::inc(&shared.metrics.basis_misses);
    }

    let budget = request
        .timeout_ms
        .map(Duration::from_millis)
        .or(shared.config.default_timeout);
    let cancel = match budget {
        Some(b) => CancelToken::with_timeout(b),
        None => CancelToken::new(),
    };
    let mut opts = SolverOptions {
        mm,
        trim_empty_calibrations: trim,
        cancel: cancel.clone(),
        ..SolverOptions::default()
    };
    opts.long.warm_basis = warm_basis.map(|b| (*b).clone());
    opts.long.lp.workspace = Some(workspace.clone());

    let started = Instant::now();
    let solve_span = ise_obs::Span::enter("engine.solve");
    let result = solve_with_speed(instance, &opts, speed);
    drop(solve_span);
    // The token is polled at phase boundaries, so a solve can also finish
    // *after* its deadline; treat that as a timeout too for predictable
    // `0 ms => fallback` semantics.
    let overran = budget.is_some() && cancel.is_cancelled();
    let elapsed = started.elapsed();
    shared.metrics.solve_time.record(elapsed);
    let solve_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;

    match result {
        Ok(outcome) if !overran => {
            let calibrations = outcome.schedule.num_calibrations();
            let lp = LpTelemetry::from_outcome(&outcome);
            if let Some(t) = &lp {
                record_lp_numerics(&shared.metrics, t);
            }
            if let Some(basis) = outcome
                .long
                .as_ref()
                .and_then(|l| l.fractional.basis.clone())
            {
                shared.bases.insert(bkey, Arc::new(basis));
            }
            shared.cache.insert(
                key,
                Arc::new(CachedSolve {
                    schedule: outcome.schedule.clone(),
                    calibrations,
                    lp,
                }),
            );
            EngineResponse {
                id,
                status: status::OK.to_string(),
                cached: false,
                timed_out: false,
                calibrations: Some(calibrations as u64),
                schedule: Some(outcome.schedule),
                error: None,
                solve_us,
                lp,
                phases: None,
                session: None,
            }
        }
        Ok(_) | Err(SchedError::Cancelled) => {
            EngineMetrics::inc(&shared.metrics.timeouts);
            if shared.config.fallback_on_timeout {
                EngineMetrics::inc(&shared.metrics.fallbacks);
                let schedule = greedy_fallback_trimmed(instance, trim);
                EngineResponse {
                    id,
                    status: status::FALLBACK.to_string(),
                    cached: false,
                    timed_out: true,
                    calibrations: Some(schedule.num_calibrations() as u64),
                    schedule: Some(schedule),
                    error: None,
                    solve_us,
                    lp: None,
                    phases: None,
                    session: None,
                }
            } else {
                let mut r = error("solve timed out".to_string(), true);
                r.solve_us = solve_us;
                r
            }
        }
        Err(e) => {
            let mut r = error(e.to_string(), false);
            r.solve_us = solve_us;
            r
        }
    }
}

/// Fold one solve's LP numerics into the engine counters: one residual
/// histogram sample per monitored solve, per-rung recovery counts, and
/// the LU basis-kernel counters (fill-in is tracked as a worst-seen
/// gauge; updates and triangular-solve paths accumulate).
fn record_lp_numerics(metrics: &EngineMetrics, t: &LpTelemetry) {
    use std::sync::atomic::Ordering;
    if t.residual_checks > 0 {
        metrics.lp_residual.record(t.max_residual);
    }
    for (counter, n) in [
        (&metrics.lp_recoveries_refactor, t.recoveries_refactor),
        (&metrics.lp_recoveries_tighten, t.recoveries_tighten),
        (&metrics.lp_recoveries_dantzig, t.recoveries_dantzig),
        (&metrics.lp_recoveries_eta, t.recoveries_eta),
        (&metrics.lp_recoveries_dense, t.recoveries_dense),
        (&metrics.lp_lu_ft_updates, t.lu_ft_updates),
        (&metrics.lp_lu_sparse_solves, t.lu_sparse_solves),
        (&metrics.lp_lu_dense_solves, t.lu_dense_solves),
    ] {
        if n > 0 {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }
    metrics
        .lp_lu_fill_nnz
        .fetch_max(t.lu_fill_nnz, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance(p: i64) -> Instance {
        Instance::new([(0, 30, p), (0, 40, p)], 1, 10).unwrap()
    }

    #[test]
    fn solves_and_caches() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let a = engine
            .submit(EngineRequest::new(tiny_instance(4)))
            .unwrap()
            .wait();
        assert_eq!(a.status, status::OK);
        assert!(!a.cached);
        ise_model::validate(&tiny_instance(4), &a.schedule.unwrap()).unwrap();
        let b = engine
            .submit(EngineRequest::new(tiny_instance(4)))
            .unwrap()
            .wait();
        assert_eq!(b.status, status::OK);
        assert!(b.cached);
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        // The long-window pipeline ran once; its residual monitor feeds the
        // LP numerics histogram, and a healthy solve climbs no ladder rung.
        assert_eq!(m.lp_residual.count, 1);
        assert_eq!(m.lp_recoveries_refactor, 0);
        assert_eq!(m.lp_recoveries_eta, 0);
        assert_eq!(m.lp_recoveries_dense, 0);
        // The default kernel is LU: the solve must report its fill-in.
        assert!(m.lp_lu_fill_nnz > 0, "LU fill-in gauge is fed");
    }

    #[test]
    fn budget_sweep_warm_starts_the_lp() {
        // Same long-window jobs at two machine budgets: the second solve
        // misses the result cache (machines is part of the cache key) but
        // hits the basis cache (machines is not part of the basis key), so
        // its LP warm-starts from the first solve's optimal basis.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let jobs = [(0, 120, 7), (5, 130, 9), (10, 140, 6), (0, 125, 8)];
        let cold = engine
            .submit(EngineRequest::new(Instance::new(jobs, 1, 10).unwrap()))
            .unwrap()
            .wait();
        assert_eq!(cold.status, status::OK);
        let cold_lp = cold.lp.expect("long pipeline ran");
        assert!(!cold_lp.warm_started);
        assert!(cold_lp.iterations > 0);

        let warm = engine
            .submit(EngineRequest::new(Instance::new(jobs, 2, 10).unwrap()))
            .unwrap()
            .wait();
        assert_eq!(warm.status, status::OK);
        assert!(!warm.cached, "different machine budget must miss the cache");
        let warm_lp = warm.lp.expect("long pipeline ran");
        assert!(warm_lp.warm_started, "basis cache hit should warm-start");

        let m = engine.metrics();
        assert_eq!(m.basis_misses, 1);
        assert_eq!(m.basis_hits, 1);
    }

    #[test]
    fn responses_carry_phase_timings() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        // Mixed instance so both pipelines (and the LP) show up.
        let inst = Instance::new([(0, 40, 7), (0, 12, 6)], 1, 10).unwrap();
        let resp = engine
            .submit(EngineRequest::new(inst.clone()))
            .unwrap()
            .wait();
        assert_eq!(resp.status, status::OK);
        let phases = resp.phases.expect("trace_phases defaults on");
        for name in ["engine.queue_wait", "engine.solve", "solve", "lp.solve"] {
            assert!(
                phases.total_us(name).is_some(),
                "missing phase {name}: {:?}",
                phases.phases
            );
        }
        // Cache hits still report the engine-side phases.
        let hit = engine.submit(EngineRequest::new(inst)).unwrap().wait();
        assert!(hit.cached);
        let phases = hit.phases.expect("cache hit keeps engine phases");
        assert!(phases.total_us("engine.cache_probe").is_some());
        assert!(phases.total_us("engine.solve").is_none());
    }

    #[test]
    fn trace_phases_off_omits_phases() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            trace_phases: false,
            ..EngineConfig::default()
        });
        let resp = engine
            .submit(EngineRequest::new(tiny_instance(4)))
            .unwrap()
            .wait();
        assert_eq!(resp.status, status::OK);
        assert!(resp.phases.is_none());
    }

    #[test]
    fn session_lifecycle_tiers_and_metrics() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        // Mixed instance: long jobs feed the LP, short jobs feed the memo.
        let inst = Instance::new([(0, 40, 7), (5, 50, 6), (0, 12, 6)], 1, 10).unwrap();
        let mut open_req = EngineRequest::new(inst);
        open_req.session = Some(SessionCmd {
            op: "open".to_string(),
            ..SessionCmd::default()
        });
        let opened = engine.session_command(1, &open_req);
        assert_eq!(opened.status, status::OK);
        let sid = opened.session.as_ref().unwrap().sid;
        assert!(sid >= SESSION_ID_BASE, "sid {sid} must be namespaced");
        assert_eq!(engine.metrics().sessions_open, 1);

        let cmd = |op: &str, delta: Option<DeltaMsg>| EngineRequest {
            id: Some(2),
            instance: None,
            timeout_ms: None,
            mm: None,
            trim: None,
            speed: None,
            session: Some(SessionCmd {
                op: op.to_string(),
                sid: Some(sid),
                delta,
            }),
        };

        // First solve is cold.
        let cold = engine.session_command(2, &cmd("solve", None));
        assert_eq!(cold.status, status::OK);
        assert!(cold.schedule.is_some());
        let t = cold.session.as_ref().unwrap().telemetry.as_ref().unwrap();
        assert_eq!(t.tier, ise_session::ReuseTier::Cold);

        // Machine-budget delta solves at the basis tier with a warm LP.
        let machines = DeltaMsg {
            op: "set_machines".to_string(),
            machines: Some(2),
            ..DeltaMsg::default()
        };
        let staged = engine.session_command(2, &cmd("delta", Some(machines)));
        assert_eq!(staged.status, status::OK);
        assert_eq!(staged.session.as_ref().unwrap().staged, 1);
        let basis = engine.session_command(2, &cmd("solve", None));
        assert_eq!(basis.status, status::OK);
        let t = basis.session.as_ref().unwrap().telemetry.as_ref().unwrap();
        assert_eq!(t.tier, ise_session::ReuseTier::Basis);
        assert!(t.warm_started, "budget-only delta must skip LP phase 1");

        // Job delta solves at the warm tier.
        let add = DeltaMsg {
            op: "add_jobs".to_string(),
            jobs: Some(vec![(10, 60, 9)]),
            ..DeltaMsg::default()
        };
        engine.session_command(2, &cmd("delta", Some(add)));
        let warm = engine.session_command(2, &cmd("solve", None));
        let t = warm.session.as_ref().unwrap().telemetry.as_ref().unwrap();
        assert_eq!(t.tier, ise_session::ReuseTier::Warm);
        assert!(t.memo_hits >= 1, "unchanged short interval must replay");

        let closed = engine.session_command(2, &cmd("close", None));
        assert_eq!(closed.status, status::OK);
        let m = engine.metrics();
        assert_eq!(m.sessions_open, 0);
        assert_eq!(m.session_reuse_cold, 1);
        assert_eq!(m.session_reuse_basis, 1);
        assert_eq!(m.session_reuse_warm, 1);
    }

    #[test]
    fn session_errors_are_responses() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let mut req = EngineRequest {
            id: Some(1),
            instance: None,
            timeout_ms: None,
            mm: None,
            trim: None,
            speed: None,
            session: Some(SessionCmd {
                op: "solve".to_string(),
                sid: Some(SESSION_ID_BASE + 99),
                delta: None,
            }),
        };
        let resp = engine.session_command(1, &req);
        assert_eq!(resp.status, status::ERROR);
        assert!(resp.error.unwrap().contains("unknown session id"));

        // Open without an instance is an error.
        req.session = Some(SessionCmd {
            op: "open".to_string(),
            ..SessionCmd::default()
        });
        let resp = engine.session_command(1, &req);
        assert_eq!(resp.status, status::ERROR);
        assert!(resp.error.unwrap().contains("requires `instance`"));

        // Unknown op is an error.
        req.instance = Some(tiny_instance(4));
        req.session = Some(SessionCmd {
            op: "warp".to_string(),
            ..SessionCmd::default()
        });
        let resp = engine.session_command(1, &req);
        assert_eq!(resp.status, status::ERROR);
        assert!(resp.error.unwrap().contains("unknown session op"));
        assert_eq!(engine.metrics().errors, 3);
    }

    #[test]
    fn session_scopes_isolate_and_reap() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let scope_a = engine.new_scope();
        let scope_b = engine.new_scope();
        assert_ne!(scope_a, scope_b);
        assert_ne!(scope_a, GLOBAL_SCOPE);

        let mut open_req = EngineRequest::new(tiny_instance(4));
        open_req.session = Some(SessionCmd {
            op: "open".to_string(),
            ..SessionCmd::default()
        });
        let opened = engine.session_command_scoped(1, &open_req, scope_a);
        assert_eq!(opened.status, status::OK);
        let sid = opened.session.as_ref().unwrap().sid;

        // Another scope can neither solve, stage, nor close the session.
        let cmd = |op: &str| EngineRequest {
            id: Some(2),
            instance: None,
            timeout_ms: None,
            mm: None,
            trim: None,
            speed: None,
            session: Some(SessionCmd {
                op: op.to_string(),
                sid: Some(sid),
                delta: None,
            }),
        };
        for op in ["solve", "close"] {
            let resp = engine.session_command_scoped(3, &cmd(op), scope_b);
            assert_eq!(resp.status, status::ERROR, "{op}");
            assert!(
                resp.error.unwrap().contains("pinned to another connection"),
                "{op}"
            );
        }
        // The owner still can.
        let resp = engine.session_command_scoped(4, &cmd("solve"), scope_a);
        assert_eq!(resp.status, status::OK);

        // Reaping a foreign scope leaves the session; reaping the owner
        // scope closes it.
        assert_eq!(engine.close_scope(scope_b), 0);
        assert_eq!(engine.metrics().sessions_open, 1);
        assert_eq!(engine.close_scope(scope_a), 1);
        assert_eq!(engine.metrics().sessions_open, 0);
        assert_eq!(engine.close_scope(GLOBAL_SCOPE), 0);
    }

    #[test]
    fn missing_instance_on_plain_request_is_an_error() {
        let engine = Engine::new(EngineConfig::default());
        let req = EngineRequest {
            id: Some(7),
            instance: None,
            timeout_ms: None,
            mm: None,
            trim: None,
            speed: None,
            session: None,
        };
        let resp = engine.submit(req).unwrap().wait();
        assert_eq!(resp.status, status::ERROR);
        assert!(resp.error.unwrap().contains("no `instance`"));
    }

    #[test]
    fn zero_timeout_falls_back() {
        let engine = Engine::new(EngineConfig::default());
        let mut req = EngineRequest::new(tiny_instance(5));
        req.timeout_ms = Some(0);
        let resp = engine.submit(req).unwrap().wait();
        assert_eq!(resp.status, status::FALLBACK);
        assert!(resp.timed_out);
        ise_model::validate(&tiny_instance(5), &resp.schedule.unwrap()).unwrap();
        assert_eq!(engine.metrics().timeouts, 1);
        assert_eq!(engine.metrics().fallbacks, 1);
    }

    #[test]
    fn zero_timeout_without_fallback_is_error() {
        let engine = Engine::new(EngineConfig {
            fallback_on_timeout: false,
            ..EngineConfig::default()
        });
        let mut req = EngineRequest::new(tiny_instance(5));
        req.timeout_ms = Some(0);
        let resp = engine.submit(req).unwrap().wait();
        assert_eq!(resp.status, status::ERROR);
        assert!(resp.timed_out);
        assert!(resp.schedule.is_none());
    }

    #[test]
    fn bad_backend_is_an_error_response() {
        let engine = Engine::new(EngineConfig::default());
        let mut req = EngineRequest::new(tiny_instance(3));
        req.mm = Some("bogus".to_string());
        let resp = engine.submit(req).unwrap().wait();
        assert_eq!(resp.status, status::ERROR);
        assert!(resp.error.unwrap().contains("bogus"));
    }

    #[test]
    fn reject_backpressure_reports_queue_full() {
        // 1 worker, queue of 1: stuff enough requests in that at least one
        // submit observes a full queue.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject,
            ..EngineConfig::default()
        });
        let mut slots = Vec::new();
        let mut saw_full = false;
        for i in 0..200 {
            let mut req = EngineRequest::new(tiny_instance(2 + (i % 7)));
            req.id = Some(i as u64);
            match engine.submit(req) {
                Ok(slot) => slots.push(slot),
                Err(SubmitError::QueueFull) => saw_full = true,
                Err(SubmitError::ShuttingDown) => unreachable!("engine is live"),
            }
        }
        for slot in slots {
            let _ = slot.wait();
        }
        assert!(saw_full, "queue of capacity 1 never filled");
        assert!(engine.metrics().rejected > 0);
    }

    #[test]
    fn shutdown_drains_outstanding_work() {
        let mut engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let slots: Vec<ResponseSlot> = (0..10)
            .map(|i| {
                engine
                    .submit(EngineRequest::new(tiny_instance(2 + (i % 5))))
                    .unwrap()
            })
            .collect();
        engine.shutdown();
        for slot in slots {
            assert!(slot.try_take().is_some(), "response missing after drain");
        }
        assert!(matches!(
            engine.submit(EngineRequest::new(tiny_instance(2))),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
