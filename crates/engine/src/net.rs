//! TCP frontend for the JSONL serve protocol: `ise serve --listen`.
//!
//! Std-only threading, no async runtime: one nonblocking acceptor thread
//! plus one thread per connection, each running the same
//! [`serve_lines`](crate::serve) loop as the stdin/file path. Every
//! connection gets its own session scope — sessions opened over a
//! connection are pinned to it (commands from another connection get an
//! inline error) and are force-closed when the connection ends, however
//! it ends.
//!
//! # Robustness
//!
//! * **Load shedding**: at most [`NetOptions::max_connections`] are
//!   served concurrently; connections over the cap are answered with one
//!   inline `"error"` response and closed at accept time
//!   (`ise_shed_total`).
//! * **Bounded lines**: [`ServeOptions::max_line_len`] applies per
//!   connection; over-limit lines are discarded without buffering and
//!   answered inline (`ise_oversize_lines_total`).
//! * **Idle timeout**: a connection that sends nothing for
//!   [`NetOptions::idle_timeout`] is told so and closed
//!   (`ise_idle_timeouts_total`).
//! * **Bounded write queues**: the per-stream `max_pending` head-of-line
//!   discipline bounds buffered responses per connection; queue waits are
//!   histogrammed as `ise_net_queue_wait_us`.
//! * **Graceful drain**: a `{"cmd": "shutdown"}` line on any connection
//!   (or [`NetServer::shutdown`]) stops the acceptor — the listener
//!   closes, so late connects are refused by the OS — wakes every
//!   reader, drains all in-flight requests in order, flushes, and joins.
//!
//! Metrics (engine + net series) are written periodically and at exit to
//! [`ServeOptions::metrics_out`] in the Prometheus text format; per-phase
//! span timings (`net.read` / `net.write` / session solves) are merged
//! across connections into [`NetSummary::phases`].

use crate::engine::{Engine, EngineConfig};
use crate::metrics::{prometheus_text_with_net, MetricsSnapshot, NetMetrics, NetMetricsSnapshot};
use crate::serve::{
    immediate_response, serve_lines, LoopExit, ServeOptions, StreamScope, FALLBACK_ID_BASE,
};
use ise_obs::{PhaseTimings, Trace};
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Network-frontend knobs on top of the per-stream [`ServeOptions`].
#[derive(Clone, Debug)]
pub struct NetOptions {
    /// Concurrent-connection cap; connections beyond it are shed at
    /// accept time with an inline error.
    pub max_connections: usize,
    /// Close a connection after this long without a complete read.
    /// `None` disables the timeout.
    pub idle_timeout: Option<Duration>,
    /// Per-connection stream options (`max_pending`, `max_line_len`,
    /// `metrics_out`, `metrics_interval`).
    pub serve: ServeOptions,
}

impl Default for NetOptions {
    fn default() -> NetOptions {
        NetOptions {
            max_connections: 256,
            idle_timeout: Some(Duration::from_secs(60)),
            serve: ServeOptions::default(),
        }
    }
}

/// Outcome of a completed [`NetServer`] run.
pub struct NetSummary {
    /// Connections accepted over the server's lifetime (shed included).
    pub connections: u64,
    /// Responses written across all connections.
    pub responses: u64,
    /// Engine metrics at shutdown.
    pub metrics: MetricsSnapshot,
    /// Network metrics at shutdown.
    pub net: NetMetricsSnapshot,
    /// Per-phase span timings merged across all connections.
    pub phases: PhaseTimings,
}

struct NetShared {
    engine: Engine,
    net: NetMetrics,
    opts: NetOptions,
    draining: AtomicBool,
    /// Read-shutdown handles for every live connection, keyed by
    /// connection id, so a drain can wake blocked readers.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    phases: Mutex<PhaseTimings>,
}

impl NetShared {
    /// Flip into draining mode (idempotent) and wake every blocked
    /// connection reader. `Shutdown::Read` surfaces as EOF on the
    /// reader's next (or in-flight) read, so each connection drains its
    /// pending responses and exits through its normal cleanup path.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        let conns = self.conns.lock().expect("conns lock");
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }

    fn write_metrics(&self) {
        if let Some(path) = &self.opts.serve.metrics_out {
            let text = prometheus_text_with_net(&self.engine.metrics(), &self.net.snapshot());
            let _ = std::fs::write(path, text);
        }
    }
}

/// Counts bytes off the wire into `NetMetrics::bytes_in`.
struct CountingReader {
    inner: TcpStream,
    shared: Arc<NetShared>,
}

impl Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.shared
            .net
            .bytes_in
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// Counts bytes onto the wire into `NetMetrics::bytes_out`.
struct CountingWriter {
    inner: TcpStream,
    shared: Arc<NetShared>,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.shared
            .net
            .bytes_out
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A running TCP frontend. Dropping the server drains it; prefer
/// [`NetServer::join`] (block until a client sends `shutdown`) or
/// [`NetServer::shutdown`] (drain now) to observe the [`NetSummary`].
pub struct NetServer {
    shared: Arc<NetShared>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl NetServer {
    /// Bind `addr` (port 0 picks an ephemeral port — see
    /// [`NetServer::local_addr`]) and start accepting connections against
    /// a fresh engine built from `config`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: EngineConfig,
        opts: NetOptions,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            engine: Engine::new(config),
            net: NetMetrics::default(),
            opts,
            draining: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(1),
            phases: Mutex::new(PhaseTimings::default()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ise-net-accept".to_string())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn acceptor thread")
        };
        Ok(NetServer {
            shared,
            acceptor: Some(acceptor),
            local_addr,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live engine and network snapshots, for monitors and tests.
    pub fn snapshot(&self) -> (MetricsSnapshot, NetMetricsSnapshot) {
        (self.shared.engine.metrics(), self.shared.net.snapshot())
    }

    /// Block until the server drains — a client sends
    /// `{"cmd": "shutdown"}`, or [`NetServer::shutdown`] was called from
    /// another handle — then join every thread, write final metrics, and
    /// report.
    pub fn join(mut self) -> NetSummary {
        self.join_inner()
    }

    /// Initiate a drain now and wait for it to complete: stop accepting
    /// (late connects are refused once the listener closes), let
    /// in-flight requests finish, flush every connection, join.
    pub fn shutdown(mut self) -> NetSummary {
        self.shared.begin_drain();
        self.join_inner()
    }

    fn join_inner(&mut self) -> NetSummary {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Connection threads can still be draining after the acceptor
        // exits; take handles in waves until none remain.
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut handles = self.shared.handles.lock().expect("handles lock");
                std::mem::take(&mut *handles)
            };
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
        self.shared.write_metrics();
        let net = self.shared.net.snapshot();
        NetSummary {
            connections: net.connections_total,
            responses: net.responses_total,
            metrics: self.shared.engine.metrics(),
            net,
            phases: self.shared.phases.lock().expect("phases lock").clone(),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shared.begin_drain();
            self.join_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<NetShared>) {
    let mut last_metrics = Instant::now();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_accept(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        reap_finished(shared);
        if last_metrics.elapsed() >= shared.opts.serve.metrics_interval {
            shared.write_metrics();
            last_metrics = Instant::now();
        }
    }
    // Dropping the listener here closes the socket: connects after this
    // point are refused by the OS rather than silently queued.
}

/// Join connection threads that already finished so the handle list does
/// not grow with total (rather than concurrent) connections.
fn reap_finished(shared: &NetShared) {
    let finished: Vec<JoinHandle<()>> = {
        let mut handles = shared.handles.lock().expect("handles lock");
        let mut finished = Vec::new();
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                finished.push(handles.swap_remove(i));
            } else {
                i += 1;
            }
        }
        finished
    };
    for h in finished {
        let _ = h.join();
    }
}

/// Best-effort single-response write used outside the serve loop
/// (shedding, drain refusals, idle-timeout notices).
fn write_notice(stream: &mut dyn Write, message: String) {
    let response = immediate_response(FALLBACK_ID_BASE, message);
    let json = serde_json::to_string(&response).expect("response serialization is infallible");
    let _ = writeln!(stream, "{json}");
    let _ = stream.flush();
}

fn handle_accept(mut stream: TcpStream, shared: &Arc<NetShared>) {
    NetMetrics::inc_counter(&shared.net.connections_total);
    if shared.draining.load(Ordering::SeqCst) {
        write_notice(
            &mut stream,
            "server is draining; connection refused".to_string(),
        );
        return;
    }
    if shared.net.connections_open.load(Ordering::SeqCst) >= shared.opts.max_connections as u64 {
        NetMetrics::inc_counter(&shared.net.shed_total);
        write_notice(
            &mut stream,
            format!(
                "server at connection capacity ({}); retry later",
                shared.opts.max_connections
            ),
        );
        return;
    }
    shared.net.connections_open.fetch_add(1, Ordering::SeqCst);
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    // Two extra handles per connection: one registered for drain wake-ups,
    // one for the reader (the original becomes the writer).
    let (drain_handle, reader) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(a), Ok(b)) => (a, b),
        _ => {
            shared.net.connections_open.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    };
    shared
        .conns
        .lock()
        .expect("conns lock")
        .insert(conn_id, drain_handle);
    // A drain that raced the insert above may have missed this
    // connection's wake-up; re-check so it cannot block the drain.
    if shared.draining.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Read);
    }
    let handle = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("ise-net-conn-{conn_id}"))
            .spawn(move || serve_connection(reader, stream, conn_id, &shared))
            .expect("spawn connection thread")
    };
    shared.handles.lock().expect("handles lock").push(handle);
}

/// Socket read timeout driving the serve loop's poll ticks: each
/// `WouldBlock` wakeup drains resolved responses to the peer and checks
/// the idle budget. Short enough that response latency while the peer is
/// quiet stays negligible; long enough that an idle connection costs
/// ~40 wakeups/s.
const POLL_TICK: Duration = Duration::from_millis(25);

fn serve_connection(reader: TcpStream, writer: TcpStream, conn_id: u64, shared: &Arc<NetShared>) {
    let _ = writer.set_nodelay(true);
    let _ = reader.set_read_timeout(Some(POLL_TICK));
    let scope = shared.engine.new_scope();
    let trace = Trace::new(1 << 12);
    {
        let _guard = trace.install();
        let _conn_span = ise_obs::Span::enter("net.conn");
        let mut reader = BufReader::new(CountingReader {
            inner: reader,
            shared: Arc::clone(shared),
        });
        let mut writer = CountingWriter {
            inner: writer,
            shared: Arc::clone(shared),
        };
        let mut responses = 0u64;
        let ctx = StreamScope {
            scope,
            net: Some(&shared.net),
            idle_timeout: shared.opts.idle_timeout,
        };
        let result = serve_lines(
            &shared.engine,
            &mut reader,
            &mut writer,
            &shared.opts.serve,
            &ctx,
            &mut responses,
        );
        match &result {
            Ok(LoopExit::Shutdown) => shared.begin_drain(),
            Ok(LoopExit::IdleTimeout) => {
                NetMetrics::inc_counter(&shared.net.idle_timeouts);
                write_notice(
                    &mut writer,
                    format!(
                        "idle timeout ({:?} without a request): closing connection",
                        shared.opts.idle_timeout.unwrap_or_default()
                    ),
                );
            }
            // EOF is a normal close; an I/O error is an abrupt peer
            // disconnect — either way the cleanup below reaps the
            // connection's sessions.
            Ok(LoopExit::Eof) | Err(_) => {}
        }
    }
    shared.engine.close_scope(scope);
    shared.conns.lock().expect("conns lock").remove(&conn_id);
    shared.net.connections_open.fetch_sub(1, Ordering::SeqCst);
    let timings = PhaseTimings::from_records(&trace.drain());
    shared.phases.lock().expect("phases lock").merge(&timings);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full loopback suite (concurrency, chaos, soak) lives in
    // `tests/net.rs`; these unit tests cover pieces with no socket.

    #[test]
    fn default_options_are_sane() {
        let opts = NetOptions::default();
        assert_eq!(opts.max_connections, 256);
        assert_eq!(opts.idle_timeout, Some(Duration::from_secs(60)));
        assert!(opts.serve.max_line_len >= 1 << 20);
    }

    #[test]
    fn bind_and_drop_terminates_cleanly() {
        let server = NetServer::bind(
            "127.0.0.1:0",
            EngineConfig::default(),
            NetOptions::default(),
        )
        .unwrap();
        assert_ne!(server.local_addr().port(), 0);
        // Drop runs the drain path with zero connections.
    }

    #[test]
    fn shutdown_with_no_traffic_reports_empty_summary() {
        let server = NetServer::bind(
            "127.0.0.1:0",
            EngineConfig::default(),
            NetOptions::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        let summary = server.shutdown();
        assert_eq!(summary.connections, 0);
        assert_eq!(summary.responses, 0);
        assert_eq!(summary.net.connections_open, 0);
        // The listener is closed: a fresh connect must be refused.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }
}
