//! Engine counters and latency histograms.
//!
//! All counters are relaxed atomics bumped by workers and read by
//! [`EngineMetrics::snapshot`], which produces a serializable
//! [`MetricsSnapshot`]. Latencies go into log₂-bucketed histograms
//! (bucket `i` counts durations in `[2^(i-1), 2^i)` microseconds), from
//! which the snapshot derives approximate quantiles.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 40;

/// Lock-free log₂ histogram of microsecond durations.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Read the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            p50_us: quantile(&buckets, count, 0.50),
            p90_us: quantile(&buckets, count, 0.90),
            p99_us: quantile(&buckets, count, 0.99),
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Upper bounds of the LP residual histogram buckets (relative residual,
/// log₁₀-spaced). A final implicit `+Inf` bucket catches anything worse.
pub const RESIDUAL_BOUNDS: [f64; 6] = [1e-15, 1e-12, 1e-9, 1e-6, 1e-3, 1e0];

/// Lock-free log₁₀ histogram of relative LP residuals
/// (`‖B·x_B − b‖∞ / (1 + ‖b‖∞)` per solve, reported by the simplex
/// residual monitor).
pub struct ResidualHistogram {
    buckets: [AtomicU64; RESIDUAL_BOUNDS.len() + 1],
    /// Sum of recorded residuals, stored as `f64` bits.
    sum_bits: AtomicU64,
}

impl Default for ResidualHistogram {
    fn default() -> ResidualHistogram {
        ResidualHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl ResidualHistogram {
    /// Record one solve's worst relative residual.
    pub fn record(&self, r: f64) {
        let r = if r.is_finite() { r.max(0.0) } else { f64::MAX };
        let idx = RESIDUAL_BOUNDS
            .iter()
            .position(|&b| r <= b)
            .unwrap_or(RESIDUAL_BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + r).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Read the bucket counts.
    pub fn snapshot(&self) -> ResidualHistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        ResidualHistogramSnapshot {
            count: buckets.iter().sum(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// Serializable view of the residual histogram.
#[derive(Clone, Debug, Serialize)]
pub struct ResidualHistogramSnapshot {
    /// Total recorded solves.
    pub count: u64,
    /// Sum of recorded residuals.
    pub sum: f64,
    /// Raw counts; bucket `i` covers residuals `<= RESIDUAL_BOUNDS[i]`
    /// (cumulative from the previous bound), with a trailing `+Inf` bucket.
    pub buckets: Vec<u64>,
}

/// Upper bound (µs) of bucket `i`: `2^i - 1`, saturating.
fn bucket_upper_us(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i).saturating_sub(1)
    }
}

fn quantile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * q).ceil() as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_us(i);
        }
    }
    bucket_upper_us(BUCKETS - 1)
}

/// Serializable view of one histogram.
#[derive(Clone, Debug, Serialize)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded durations in microseconds.
    pub sum_us: u64,
    /// Approximate (bucket upper bound) quantiles in microseconds.
    pub p50_us: u64,
    /// 90th percentile, bucket upper bound.
    pub p90_us: u64,
    /// 99th percentile, bucket upper bound.
    pub p99_us: u64,
    /// Raw counts; bucket `i` covers `[2^(i-1), 2^i)` µs.
    pub buckets: Vec<u64>,
}

/// Live counters shared by all engine workers.
#[derive(Default)]
pub struct EngineMetrics {
    /// Requests accepted into the queue.
    pub requests: AtomicU64,
    /// Requests refused by `Reject` backpressure.
    pub rejected: AtomicU64,
    /// Responses produced (any status).
    pub completed: AtomicU64,
    /// Responses served from the result cache.
    pub cache_hits: AtomicU64,
    /// Requests that missed the cache and went to the solver.
    pub cache_misses: AtomicU64,
    /// Cache-missing solves that found a warm-start LP basis.
    pub basis_hits: AtomicU64,
    /// Cache-missing solves that started the LP cold.
    pub basis_misses: AtomicU64,
    /// Solves that hit their deadline and were cancelled.
    pub timeouts: AtomicU64,
    /// Timed-out solves rescued by the greedy fallback.
    pub fallbacks: AtomicU64,
    /// Solves that ended in an error response.
    pub errors: AtomicU64,
    /// Session commits that reused a cached optimal basis (machine-budget
    /// deltas only; LP phase 1 skipped).
    pub session_reuse_basis: AtomicU64,
    /// Session commits that warm-started the LP after job add/remove
    /// deltas, replaying unchanged short intervals from the memo.
    pub session_reuse_warm: AtomicU64,
    /// Session commits that recomputed everything (first commit or
    /// structural deltas).
    pub session_reuse_cold: AtomicU64,
    /// LP recovery-ladder rung 1 activations (mid-solve refactorization).
    pub lp_recoveries_refactor: AtomicU64,
    /// LP recovery-ladder rung 2 activations (tightened pivot tolerance).
    pub lp_recoveries_tighten: AtomicU64,
    /// LP recovery-ladder rung 3 activations (Dantzig full pricing).
    pub lp_recoveries_dantzig: AtomicU64,
    /// LP recovery-ladder rung 4 activations (eta-kernel fallback).
    pub lp_recoveries_eta: AtomicU64,
    /// LP recovery-ladder rung 5 activations (dense-kernel fallback).
    pub lp_recoveries_dense: AtomicU64,
    /// Worst LU fill-in (stored L+U nonzeros) seen across solves.
    pub lp_lu_fill_nnz: AtomicU64,
    /// Forrest–Tomlin pivot updates applied across solves.
    pub lp_lu_ft_updates: AtomicU64,
    /// FTRAN/BTRAN solves that took the hyper-sparse path.
    pub lp_lu_sparse_solves: AtomicU64,
    /// FTRAN/BTRAN solves that fell back to the dense triangular kernels.
    pub lp_lu_dense_solves: AtomicU64,
    /// Worst relative LP residual per solve, for solves where the residual
    /// monitor ran.
    pub lp_residual: ResidualHistogram,
    /// Time requests spent queued before a worker picked them up.
    pub queue_wait: LatencyHistogram,
    /// Time spent in the solver (cache misses only).
    pub solve_time: LatencyHistogram,
    /// Time spent serializing responses (recorded by `ise serve`).
    pub serialize_time: LatencyHistogram,
}

impl EngineMetrics {
    /// Bump a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of all counters for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            basis_hits: self.basis_hits.load(Ordering::Relaxed),
            basis_misses: self.basis_misses.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            session_reuse_basis: self.session_reuse_basis.load(Ordering::Relaxed),
            session_reuse_warm: self.session_reuse_warm.load(Ordering::Relaxed),
            session_reuse_cold: self.session_reuse_cold.load(Ordering::Relaxed),
            lp_recoveries_refactor: self.lp_recoveries_refactor.load(Ordering::Relaxed),
            lp_recoveries_tighten: self.lp_recoveries_tighten.load(Ordering::Relaxed),
            lp_recoveries_dantzig: self.lp_recoveries_dantzig.load(Ordering::Relaxed),
            lp_recoveries_eta: self.lp_recoveries_eta.load(Ordering::Relaxed),
            lp_recoveries_dense: self.lp_recoveries_dense.load(Ordering::Relaxed),
            lp_lu_fill_nnz: self.lp_lu_fill_nnz.load(Ordering::Relaxed),
            lp_lu_ft_updates: self.lp_lu_ft_updates.load(Ordering::Relaxed),
            lp_lu_sparse_solves: self.lp_lu_sparse_solves.load(Ordering::Relaxed),
            lp_lu_dense_solves: self.lp_lu_dense_solves.load(Ordering::Relaxed),
            lp_residual: self.lp_residual.snapshot(),
            cache_evictions: 0,
            basis_cache_entries: 0,
            sessions_open: 0,
            queue_wait: self.queue_wait.snapshot(),
            solve_time: self.solve_time.snapshot(),
            serialize_time: self.serialize_time.snapshot(),
        }
    }
}

/// Serializable engine metrics (see [`EngineMetrics`] for field meanings).
#[derive(Clone, Debug, Serialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests refused by `Reject` backpressure.
    pub rejected: u64,
    /// Responses produced (any status).
    pub completed: u64,
    /// Responses served from the result cache.
    pub cache_hits: u64,
    /// Requests that went to the solver.
    pub cache_misses: u64,
    /// Cache-missing solves that found a warm-start LP basis.
    pub basis_hits: u64,
    /// Cache-missing solves that started the LP cold.
    pub basis_misses: u64,
    /// Solves cancelled at their deadline.
    pub timeouts: u64,
    /// Timed-out solves rescued by the greedy fallback.
    pub fallbacks: u64,
    /// Error responses.
    pub errors: u64,
    /// Session commits at the basis reuse tier.
    pub session_reuse_basis: u64,
    /// Session commits at the warm reuse tier.
    pub session_reuse_warm: u64,
    /// Session commits at the cold reuse tier.
    pub session_reuse_cold: u64,
    /// LP recovery-ladder activations, rung 1 (refactorization).
    pub lp_recoveries_refactor: u64,
    /// LP recovery-ladder activations, rung 2 (tightened pivot tolerance).
    pub lp_recoveries_tighten: u64,
    /// LP recovery-ladder activations, rung 3 (Dantzig pricing).
    pub lp_recoveries_dantzig: u64,
    /// LP recovery-ladder activations, rung 4 (eta fallback).
    pub lp_recoveries_eta: u64,
    /// LP recovery-ladder activations, rung 5 (dense fallback).
    pub lp_recoveries_dense: u64,
    /// Worst LU fill-in (stored L+U nonzeros) seen across solves.
    pub lp_lu_fill_nnz: u64,
    /// Forrest–Tomlin pivot updates applied across solves.
    pub lp_lu_ft_updates: u64,
    /// FTRAN/BTRAN solves that took the hyper-sparse path.
    pub lp_lu_sparse_solves: u64,
    /// FTRAN/BTRAN solves on the dense triangular fallback.
    pub lp_lu_dense_solves: u64,
    /// Per-solve worst relative LP residual histogram.
    pub lp_residual: ResidualHistogramSnapshot,
    /// Result- and basis-cache entries evicted by LRU capacity pressure
    /// (gauge; filled in by `Engine::metrics`, 0 from a bare
    /// `EngineMetrics::snapshot`).
    pub cache_evictions: u64,
    /// Live warm-start bases held by the basis cache (gauge; filled in by
    /// `Engine::metrics`).
    pub basis_cache_entries: u64,
    /// Currently open incremental sessions (gauge; filled in by
    /// `Engine::metrics`).
    pub sessions_open: u64,
    /// Queue-wait latency histogram.
    pub queue_wait: HistogramSnapshot,
    /// Solver latency histogram.
    pub solve_time: HistogramSnapshot,
    /// Response-serialization latency histogram.
    pub serialize_time: HistogramSnapshot,
}

/// Live counters for the TCP frontend (`ise serve --listen`), shared by
/// the acceptor and every connection thread.
#[derive(Default)]
pub struct NetMetrics {
    /// Connections accepted, including ones immediately shed.
    pub connections_total: AtomicU64,
    /// Currently open connections (gauge).
    pub connections_open: AtomicU64,
    /// Connections refused at accept time (connection cap or drain).
    pub shed_total: AtomicU64,
    /// Bytes read from clients.
    pub bytes_in: AtomicU64,
    /// Bytes written to clients.
    pub bytes_out: AtomicU64,
    /// Lines rejected for exceeding the configured maximum length.
    pub oversize_lines: AtomicU64,
    /// Connections closed by the read idle timeout.
    pub idle_timeouts: AtomicU64,
    /// Responses written across all connections.
    pub responses_total: AtomicU64,
    /// Time responses spent in a per-connection write queue (behind the
    /// head-of-line response) before being written.
    pub write_queue_wait: LatencyHistogram,
}

impl NetMetrics {
    /// Bump a counter by one.
    pub fn inc_counter(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of all counters for reporting.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        NetMetricsSnapshot {
            connections_total: self.connections_total.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            shed_total: self.shed_total.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            oversize_lines: self.oversize_lines.load(Ordering::Relaxed),
            idle_timeouts: self.idle_timeouts.load(Ordering::Relaxed),
            responses_total: self.responses_total.load(Ordering::Relaxed),
            write_queue_wait: self.write_queue_wait.snapshot(),
        }
    }
}

/// Serializable TCP-frontend metrics (see [`NetMetrics`]).
#[derive(Clone, Debug, Serialize)]
pub struct NetMetricsSnapshot {
    /// Connections accepted, including ones immediately shed.
    pub connections_total: u64,
    /// Currently open connections (gauge).
    pub connections_open: u64,
    /// Connections refused at accept time.
    pub shed_total: u64,
    /// Bytes read from clients.
    pub bytes_in: u64,
    /// Bytes written to clients.
    pub bytes_out: u64,
    /// Lines rejected for exceeding the maximum length.
    pub oversize_lines: u64,
    /// Connections closed by the read idle timeout.
    pub idle_timeouts: u64,
    /// Responses written across all connections.
    pub responses_total: u64,
    /// Per-connection write-queue wait histogram.
    pub write_queue_wait: HistogramSnapshot,
}

/// Render a snapshot in the Prometheus text exposition format: one
/// `ise_*_total` counter family per engine counter and one histogram
/// family per latency histogram, with cumulative `_bucket{le="..."}`
/// series, `_sum` (microseconds), and `_count`.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let counters: [(&str, &str, u64); 10] = [
        (
            "requests",
            "Requests accepted into the queue",
            snap.requests,
        ),
        (
            "rejected",
            "Requests refused by backpressure",
            snap.rejected,
        ),
        ("completed", "Responses produced", snap.completed),
        (
            "cache_hits",
            "Responses served from the result cache",
            snap.cache_hits,
        ),
        (
            "cache_misses",
            "Requests that went to the solver",
            snap.cache_misses,
        ),
        (
            "basis_hits",
            "Solves warm-started from a cached basis",
            snap.basis_hits,
        ),
        (
            "basis_misses",
            "Solves that started the LP cold",
            snap.basis_misses,
        ),
        (
            "timeouts",
            "Solves cancelled at their deadline",
            snap.timeouts,
        ),
        (
            "fallbacks",
            "Timed-out solves rescued by the greedy fallback",
            snap.fallbacks,
        ),
        ("errors", "Error responses", snap.errors),
    ];
    for (name, help, value) in counters {
        out.push_str(&format!(
            "# HELP ise_{name}_total {help}\n# TYPE ise_{name}_total counter\nise_{name}_total {value}\n"
        ));
    }
    out.push_str(
        "# HELP ise_session_reuse_total Session commits by reuse tier\n\
         # TYPE ise_session_reuse_total counter\n",
    );
    for (tier, value) in [
        ("basis", snap.session_reuse_basis),
        ("warm", snap.session_reuse_warm),
        ("cold", snap.session_reuse_cold),
    ] {
        out.push_str(&format!(
            "ise_session_reuse_total{{tier=\"{tier}\"}} {value}\n"
        ));
    }
    out.push_str(
        "# HELP ise_lp_recoveries_total LP numerical recoveries by ladder rung\n\
         # TYPE ise_lp_recoveries_total counter\n",
    );
    for (rung, value) in [
        ("refactor", snap.lp_recoveries_refactor),
        ("tighten", snap.lp_recoveries_tighten),
        ("dantzig", snap.lp_recoveries_dantzig),
        ("eta", snap.lp_recoveries_eta),
        ("dense", snap.lp_recoveries_dense),
    ] {
        out.push_str(&format!(
            "ise_lp_recoveries_total{{rung=\"{rung}\"}} {value}\n"
        ));
    }
    out.push_str(
        "# HELP ise_lp_lu_fill_nnz Worst LU fill-in (stored L+U nonzeros) seen across solves\n\
         # TYPE ise_lp_lu_fill_nnz gauge\n",
    );
    out.push_str(&format!("ise_lp_lu_fill_nnz {}\n", snap.lp_lu_fill_nnz));
    out.push_str(
        "# HELP ise_lp_lu_ft_updates_total Forrest-Tomlin pivot updates applied\n\
         # TYPE ise_lp_lu_ft_updates_total counter\n",
    );
    out.push_str(&format!(
        "ise_lp_lu_ft_updates_total {}\n",
        snap.lp_lu_ft_updates
    ));
    out.push_str(
        "# HELP ise_lp_lu_triangular_solves_total FTRAN/BTRAN solves by kernel path\n\
         # TYPE ise_lp_lu_triangular_solves_total counter\n",
    );
    for (path, value) in [
        ("sparse", snap.lp_lu_sparse_solves),
        ("dense", snap.lp_lu_dense_solves),
    ] {
        out.push_str(&format!(
            "ise_lp_lu_triangular_solves_total{{path=\"{path}\"}} {value}\n"
        ));
    }
    out.push_str(
        "# HELP ise_lp_residual Worst relative LP residual per solve\n\
         # TYPE ise_lp_residual histogram\n",
    );
    let mut cumulative = 0u64;
    for (i, &bound) in RESIDUAL_BOUNDS.iter().enumerate() {
        cumulative += snap.lp_residual.buckets.get(i).copied().unwrap_or(0);
        out.push_str(&format!(
            "ise_lp_residual_bucket{{le=\"{bound:e}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "ise_lp_residual_bucket{{le=\"+Inf\"}} {count}\nise_lp_residual_sum {sum:e}\nise_lp_residual_count {count}\n",
        count = snap.lp_residual.count,
        sum = snap.lp_residual.sum
    ));
    let gauges: [(&str, &str, u64); 3] = [
        (
            "cache_evictions",
            "Cache entries evicted by LRU capacity pressure",
            snap.cache_evictions,
        ),
        (
            "basis_cache_entries",
            "Live warm-start bases in the basis cache",
            snap.basis_cache_entries,
        ),
        (
            "sessions_open",
            "Currently open incremental sessions",
            snap.sessions_open,
        ),
    ];
    for (name, help, value) in gauges {
        out.push_str(&format!(
            "# HELP ise_{name} {help}\n# TYPE ise_{name} gauge\nise_{name} {value}\n"
        ));
    }
    let histograms: [(&str, &str, &HistogramSnapshot); 3] = [
        (
            "queue_wait_us",
            "Queue wait before a worker pickup",
            &snap.queue_wait,
        ),
        (
            "solve_time_us",
            "Solver latency (cache misses only)",
            &snap.solve_time,
        ),
        (
            "serialize_time_us",
            "Response serialization latency",
            &snap.serialize_time,
        ),
    ];
    for (name, help, h) in histograms {
        push_histogram(&mut out, name, help, h);
    }
    out
}

fn push_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "# HELP ise_{name} {help}\n# TYPE ise_{name} histogram\n"
    ));
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        cumulative += c;
        out.push_str(&format!(
            "ise_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_upper_us(i)
        ));
    }
    out.push_str(&format!(
        "ise_{name}_bucket{{le=\"+Inf\"}} {count}\nise_{name}_sum {sum}\nise_{name}_count {count}\n",
        count = h.count,
        sum = h.sum_us
    ));
}

/// [`prometheus_text`] plus the TCP-frontend series: connection counters
/// and gauges, byte counters, shed/oversize/idle-timeout counters, and
/// the per-connection write-queue-wait histogram.
pub fn prometheus_text_with_net(snap: &MetricsSnapshot, net: &NetMetricsSnapshot) -> String {
    let mut out = prometheus_text(snap);
    let counters: [(&str, &str, u64); 7] = [
        (
            "connections_total",
            "Connections accepted, including shed ones",
            net.connections_total,
        ),
        (
            "shed_total",
            "Connections refused at accept time",
            net.shed_total,
        ),
        ("bytes_in_total", "Bytes read from clients", net.bytes_in),
        ("bytes_out_total", "Bytes written to clients", net.bytes_out),
        (
            "oversize_lines_total",
            "Lines rejected for exceeding the maximum length",
            net.oversize_lines,
        ),
        (
            "idle_timeouts_total",
            "Connections closed by the read idle timeout",
            net.idle_timeouts,
        ),
        (
            "net_responses_total",
            "Responses written across all connections",
            net.responses_total,
        ),
    ];
    for (name, help, value) in counters {
        out.push_str(&format!(
            "# HELP ise_{name} {help}\n# TYPE ise_{name} counter\nise_{name} {value}\n"
        ));
    }
    out.push_str(&format!(
        "# HELP ise_connections_open Currently open connections\n\
         # TYPE ise_connections_open gauge\nise_connections_open {}\n",
        net.connections_open
    ));
    push_histogram(
        &mut out,
        "net_queue_wait_us",
        "Response wait in the per-connection write queue",
        &net.write_queue_wait,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(100));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 lands in the 100 µs bucket (upper bound 127), p99 likewise.
        assert_eq!(s.p50_us, 127);
        assert_eq!(s.p99_us, 127);
        assert!(s.buckets.iter().sum::<u64>() == 100);
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::default();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = EngineMetrics::default();
        EngineMetrics::inc(&m.requests);
        m.queue_wait.record(Duration::from_micros(5));
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        assert!(json.contains("\"requests\":1"), "{json}");
        assert!(json.contains("\"queue_wait\""), "{json}");
        assert!(json.contains("\"sum_us\":5"), "{json}");
    }

    #[test]
    fn quantiles_with_all_samples_in_one_bucket() {
        // Every sample lands in the same bucket: all quantiles must agree
        // on that bucket's upper bound.
        let h = LatencyHistogram::default();
        for _ in 0..7 {
            h.record(Duration::from_micros(3));
        }
        let s = h.snapshot();
        let expect = bucket_upper_us(2); // 3 µs → bucket 2, upper bound 3
        assert_eq!(s.p50_us, expect);
        assert_eq!(s.p90_us, expect);
        assert_eq!(s.p99_us, expect);
        assert_eq!(s.sum_us, 21);
    }

    #[test]
    fn quantiles_with_all_samples_in_last_bucket() {
        // Durations beyond the histogram range clamp into the final
        // bucket; quantiles must report its upper bound, not overflow.
        let h = LatencyHistogram::default();
        for _ in 0..3 {
            h.record(Duration::from_secs(1 << 30));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[BUCKETS - 1], 3);
        let expect = bucket_upper_us(BUCKETS - 1);
        assert_eq!(s.p50_us, expect);
        assert_eq!(s.p99_us, expect);
    }

    #[test]
    fn single_sample_quantiles() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(1000));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, s.p99_us);
    }

    #[test]
    fn prometheus_net_series_are_well_formed() {
        let m = EngineMetrics::default();
        let net = NetMetrics::default();
        NetMetrics::inc_counter(&net.connections_total);
        NetMetrics::inc_counter(&net.shed_total);
        net.bytes_in.fetch_add(512, Ordering::Relaxed);
        net.bytes_out.fetch_add(2048, Ordering::Relaxed);
        net.write_queue_wait.record(Duration::from_micros(33));
        let text = prometheus_text_with_net(&m.snapshot(), &net.snapshot());
        for family in [
            "# TYPE ise_connections_total counter",
            "# TYPE ise_connections_open gauge",
            "# TYPE ise_shed_total counter",
            "# TYPE ise_bytes_in_total counter",
            "# TYPE ise_bytes_out_total counter",
            "# TYPE ise_oversize_lines_total counter",
            "# TYPE ise_idle_timeouts_total counter",
            "# TYPE ise_net_responses_total counter",
            "# TYPE ise_net_queue_wait_us histogram",
        ] {
            assert!(text.contains(family), "missing {family}\n{text}");
        }
        assert!(text.contains("ise_connections_total 1"), "{text}");
        assert!(text.contains("ise_shed_total 1"), "{text}");
        assert!(text.contains("ise_bytes_in_total 512"), "{text}");
        assert!(text.contains("ise_net_queue_wait_us_count 1"), "{text}");
        // The engine series are still present and every line stays
        // machine-parseable (f64: the residual histogram emits floats).
        assert!(text.contains("# TYPE ise_requests_total counter"), "{text}");
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad line: {line}");
            assert!(parts.next().is_some(), "bad line: {line}");
        }
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let m = EngineMetrics::default();
        EngineMetrics::inc(&m.requests);
        EngineMetrics::inc(&m.completed);
        m.queue_wait.record(Duration::from_micros(5));
        m.solve_time.record(Duration::from_micros(900));
        m.serialize_time.record(Duration::from_micros(12));
        let text = prometheus_text(&m.snapshot());
        assert!(text.contains("# TYPE ise_requests_total counter"), "{text}");
        assert!(text.contains("ise_requests_total 1"), "{text}");
        assert!(
            text.contains("# TYPE ise_queue_wait_us histogram"),
            "{text}"
        );
        assert!(
            text.contains("ise_queue_wait_us_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("ise_solve_time_us_sum 900"), "{text}");
        assert!(text.contains("ise_serialize_time_us_count 1"), "{text}");
        assert!(
            text.contains("# TYPE ise_session_reuse_total counter"),
            "{text}"
        );
        assert!(
            text.contains("ise_session_reuse_total{tier=\"cold\"} 0"),
            "{text}"
        );
        assert!(text.contains("# TYPE ise_sessions_open gauge"), "{text}");
        assert!(text.contains("# TYPE ise_cache_evictions gauge"), "{text}");
        assert!(
            text.contains("# TYPE ise_basis_cache_entries gauge"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE ise_lp_recoveries_total counter"),
            "{text}"
        );
        assert!(
            text.contains("ise_lp_recoveries_total{rung=\"dense\"} 0"),
            "{text}"
        );
        assert!(text.contains("# TYPE ise_lp_residual histogram"), "{text}");
        assert!(
            text.contains("ise_lp_residual_bucket{le=\"1e-6\"}"),
            "{text}"
        );
        // Bucket series must be cumulative: the +Inf bucket equals _count.
        let inf: Vec<&str> = text.lines().filter(|l| l.contains("le=\"+Inf\"")).collect();
        assert_eq!(inf.len(), 4, "{text}");
        // Every non-comment line is `name{labels} value` or `name value`
        // (f64: the residual histogram emits floats).
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad line: {line}");
            assert!(parts.next().is_some(), "bad line: {line}");
        }
    }

    #[test]
    fn residual_histogram_buckets_and_prometheus_series() {
        let m = EngineMetrics::default();
        m.lp_residual.record(1e-14);
        m.lp_residual.record(1e-7);
        m.lp_residual.record(0.5);
        m.lp_residual.record(f64::INFINITY); // clamps into +Inf bucket
        EngineMetrics::inc(&m.lp_recoveries_refactor);
        EngineMetrics::inc(&m.lp_recoveries_eta);
        EngineMetrics::inc(&m.lp_recoveries_dense);
        m.lp_lu_fill_nnz.fetch_max(321, Ordering::Relaxed);
        m.lp_lu_ft_updates.fetch_add(7, Ordering::Relaxed);
        m.lp_lu_sparse_solves.fetch_add(9, Ordering::Relaxed);
        m.lp_lu_dense_solves.fetch_add(2, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.lp_residual.count, 4);
        assert!(snap.lp_residual.sum >= 0.5);
        let text = prometheus_text(&snap);
        assert!(
            text.contains("ise_lp_recoveries_total{rung=\"refactor\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ise_lp_recoveries_total{rung=\"eta\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ise_lp_recoveries_total{rung=\"dense\"} 1"),
            "{text}"
        );
        assert!(text.contains("ise_lp_lu_fill_nnz 321"), "{text}");
        assert!(text.contains("ise_lp_lu_ft_updates_total 7"), "{text}");
        assert!(
            text.contains("ise_lp_lu_triangular_solves_total{path=\"sparse\"} 9"),
            "{text}"
        );
        assert!(
            text.contains("ise_lp_lu_triangular_solves_total{path=\"dense\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ise_lp_residual_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        // Cumulative: the 1e-12 bucket already contains the 1e-14 sample.
        assert!(
            text.contains("ise_lp_residual_bucket{le=\"1e-12\"} 1"),
            "{text}"
        );
        assert!(text.contains("ise_lp_residual_count 4"), "{text}");
    }
}
