//! Bounded multi-producer/multi-consumer queue on `Mutex` + `Condvar`.
//!
//! The engine's request queue: producers either block for space or get a
//! `Full` error back (configurable backpressure, decided by the caller via
//! [`BoundedQueue::push_blocking`] vs [`BoundedQueue::try_push`]), and
//! workers block on [`BoundedQueue::pop`] until an item or shutdown
//! arrives. Closing wakes everyone: pending items are still drained, then
//! `pop` returns `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (only from [`BoundedQueue::try_push`]).
    Full,
    /// The queue was closed; no further items are accepted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO shared by producers and a worker pool.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signalled when an item is pushed or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item is popped or the queue closes.
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` in-flight items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue without waiting; `Err(Full)` when at capacity.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, waiting for space if necessary.
    pub fn push_blocking(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.closed {
                return Err((item, PushError::Closed));
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self.not_full.wait(s).unwrap();
        }
    }

    /// Dequeue, blocking until an item arrives. `None` once the queue is
    /// closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap();
        }
    }

    /// Stop accepting new items and wake all waiters. Already-queued items
    /// are still delivered.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current number of queued items (racy; for metrics only).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (racy; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn try_push_full() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err((2, PushError::Full))));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err((2, PushError::Closed))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push_blocking(2).is_ok());
        // Consume to make room; the producer must then complete.
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn pop_unblocks_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop());
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
