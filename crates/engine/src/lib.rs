//! # ise-engine — concurrent batch solving for calibration scheduling
//!
//! A serving layer over [`ise_sched`]: a fixed worker pool consumes solve
//! requests from a bounded queue, deduplicates work through a sharded LRU
//! result cache, enforces per-request deadlines via the solver's
//! cooperative [`CancelToken`](ise_sched::cancel::CancelToken) hook, and
//! degrades to a greedy (valid, non-approximate) schedule when a deadline
//! expires. The `ise serve` CLI mode wraps [`serve::serve`] around stdin /
//! file JSONL streams.
//!
//! Module map:
//!
//! * [`queue`] — bounded MPMC request queue with blocking or rejecting
//!   backpressure.
//! * [`cache`] — sharded LRU keyed by a canonical hash of
//!   `(instance, options)`, plus a warm-start LP-basis cache keyed on the
//!   job set alone so machine-budget sweeps skip simplex phase 1.
//! * [`metrics`] — atomic counters plus log₂ latency histograms,
//!   serializable to JSON.
//! * [`fallback`] — the infallible greedy schedule used on timeout.
//! * [`engine`] — the worker pool tying the above together, plus the
//!   incremental-session registry (`open`/`delta`/`solve`/`close`
//!   commands over [`ise_session::Session`]).
//! * [`serve`] — JSONL request/response streaming.
//! * [`net`] — the `--listen` TCP frontend: acceptor + per-connection
//!   threads running the [`serve`] loop with connection-scoped sessions,
//!   load shedding, idle timeouts, and graceful drain shutdown.

pub mod cache;
pub mod engine;
pub mod fallback;
pub mod metrics;
pub mod net;
pub mod queue;
pub mod serve;

pub use cache::{basis_key, cache_key, ShardedLru};
pub use engine::{
    status, Backpressure, Engine, EngineConfig, EngineRequest, EngineResponse, ResponseSlot,
    SessionCmd, SessionInfo, SubmitError, GLOBAL_SCOPE, SESSION_ID_BASE,
};
pub use fallback::greedy_fallback;
pub use metrics::{
    prometheus_text, prometheus_text_with_net, EngineMetrics, MetricsSnapshot, NetMetrics,
    NetMetricsSnapshot,
};
pub use net::{NetOptions, NetServer, NetSummary};
pub use serve::{serve, serve_with, ServeOptions, ServeSummary, FALLBACK_ID_BASE};
