//! JSONL batch serving: one request per input line, one response per
//! output line, in input order.
//!
//! Request lines are [`EngineRequest`] JSON objects; the only required
//! field is `instance`. Malformed lines produce an `"error"` response (with
//! the line number as the id) instead of aborting the stream, so one bad
//! record cannot poison a batch. Blank lines are skipped.

use crate::engine::{status, Engine, EngineConfig, EngineRequest, EngineResponse, ResponseSlot};
use crate::metrics::MetricsSnapshot;
use std::io::{BufRead, Write};

enum Pending {
    /// Submitted; the worker pool will fill the slot.
    InFlight(ResponseSlot),
    /// Failed before reaching the pool (parse error, rejected submit).
    Immediate(Box<EngineResponse>),
}

/// Outcome of one [`serve`] run.
pub struct ServeSummary {
    /// Responses written.
    pub responses: u64,
    /// Engine metrics at end of stream.
    pub metrics: MetricsSnapshot,
}

fn immediate_error(id: u64, message: String) -> Pending {
    Pending::Immediate(Box::new(EngineResponse {
        id,
        status: status::ERROR.to_string(),
        cached: false,
        timed_out: false,
        calibrations: None,
        schedule: None,
        error: Some(message),
        solve_us: 0,
        lp: None,
    }))
}

/// Read JSONL requests from `input`, solve them on `config`'s worker pool,
/// and write JSONL responses to `output` in input order.
///
/// I/O errors abort the run; per-request failures do not.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    output: &mut W,
    config: EngineConfig,
) -> std::io::Result<ServeSummary> {
    let engine = Engine::new(config);
    let mut pending: Vec<Pending> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fallback_id = lineno as u64;
        let entry = match serde_json::from_str::<EngineRequest>(&line) {
            Ok(mut request) => {
                if request.id.is_none() {
                    request.id = Some(fallback_id);
                }
                match engine.submit(request) {
                    Ok(slot) => Pending::InFlight(slot),
                    Err(e) => immediate_error(fallback_id, e.to_string()),
                }
            }
            Err(e) => immediate_error(fallback_id, format!("line {}: {e}", lineno + 1)),
        };
        pending.push(entry);
    }

    let mut responses = 0u64;
    for entry in pending {
        let response = match entry {
            Pending::InFlight(slot) => slot.wait(),
            Pending::Immediate(r) => *r,
        };
        let json = serde_json::to_string(&response).expect("response serialization is infallible");
        writeln!(output, "{json}")?;
        responses += 1;
    }
    output.flush()?;
    let metrics = engine.metrics();
    Ok(ServeSummary { responses, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_line(id: u64, proc: i64) -> String {
        format!(
            "{{\"id\": {id}, \"instance\": {{\"jobs\": [{{\"id\": 0, \"release\": 0, \
             \"deadline\": 30, \"proc\": {proc}}}], \"machines\": 1, \"calib_len\": 10}}}}"
        )
    }

    #[test]
    fn serves_in_order_with_errors_inline() {
        let input = format!(
            "{}\nnot json\n\n{}\n",
            request_line(7, 4),
            request_line(9, 5)
        );
        let mut out = Vec::new();
        let summary = serve(
            input.as_bytes(),
            &mut out,
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.responses, 3);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["id"].as_u64(), Some(7));
        assert_eq!(first["status"].as_str(), Some("ok"));
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["status"].as_str(), Some("error"));
        let third: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(third["id"].as_u64(), Some(9));
        // The malformed line never reached the engine: 2 solves, 0 errors.
        assert_eq!(summary.metrics.errors, 0);
        assert_eq!(summary.metrics.completed, 2);
    }
}
