//! JSONL batch serving: one request per input line, one response per
//! output line, in input order, **streamed** — each response is written
//! (and flushed) as soon as it and everything before it has resolved,
//! so a consumer tailing the output sees results while the input is
//! still being produced.
//!
//! Request lines are [`EngineRequest`] JSON objects; the only required
//! field is `instance`. Malformed lines produce an `"error"` response
//! instead of aborting the stream, so one bad record cannot poison a
//! batch. Blank lines are skipped.
//!
//! # Sessions
//!
//! A request carrying a `session` command (`{"session": {"op": "open"},
//! "instance": {...}}`, then `delta`/`solve`/`close` with the returned
//! `sid`) is executed synchronously in stream order against the engine's
//! incremental-session registry instead of the worker pool — session
//! state is ordered, so a staged delta is always visible to the next
//! `solve` on the stream. Session ids live in their own
//! [`crate::engine::SESSION_ID_BASE`] (`2^62`) namespace and never
//! collide with response ids.
//!
//! # Id contract
//!
//! Every response echoes an id. Explicit request ids must be below
//! [`FALLBACK_ID_BASE`] (`2^63`); ids at or above it are reserved for the
//! server and such a request gets an `"error"` response. Requests without
//! an id are assigned `FALLBACK_ID_BASE + line_number` (0-based), which
//! cannot collide with any valid explicit id — mixing explicit and
//! implicit ids in one stream is safe.
//!
//! # Backpressure
//!
//! At most [`ServeOptions::max_pending`] responses are buffered awaiting
//! an earlier (head-of-line) response; beyond that the reader blocks on
//! the head rather than buffering the whole input.

use crate::engine::{status, Engine, EngineConfig, EngineRequest, EngineResponse, ResponseSlot};
use crate::metrics::{prometheus_text, MetricsSnapshot};
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// First id the server assigns to requests that omit `id`. Explicit ids
/// must be strictly below this; the range `[2^63, 2^64)` belongs to the
/// server.
pub const FALLBACK_ID_BASE: u64 = 1 << 63;

enum Pending {
    /// Submitted; the worker pool will fill the slot.
    InFlight(ResponseSlot),
    /// Failed before reaching the pool (parse error, reserved id,
    /// rejected submit).
    Immediate(Box<EngineResponse>),
}

impl Pending {
    /// Non-blocking poll.
    fn poll(&mut self) -> Option<EngineResponse> {
        match self {
            Pending::InFlight(slot) => slot.try_take(),
            Pending::Immediate(_) => match std::mem::replace(self, Pending::taken()) {
                Pending::Immediate(r) => Some(*r),
                Pending::InFlight(_) => unreachable!("matched Immediate"),
            },
        }
    }

    /// Blocking resolve.
    fn wait(self) -> EngineResponse {
        match self {
            Pending::InFlight(slot) => slot.wait(),
            Pending::Immediate(r) => *r,
        }
    }

    /// Placeholder left behind by [`Pending::poll`] on an `Immediate`
    /// entry; the caller pops the entry immediately after.
    fn taken() -> Pending {
        Pending::Immediate(Box::new(immediate_response(0, "taken".to_string())))
    }
}

/// How [`serve_with`] streams and reports.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Maximum responses buffered while waiting for an earlier one;
    /// reading blocks on the head-of-line response beyond this.
    pub max_pending: usize,
    /// Write engine metrics in the Prometheus text format to this path,
    /// periodically and at end of stream.
    pub metrics_out: Option<PathBuf>,
    /// Cadence of periodic metrics writes (checked between input lines).
    pub metrics_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_pending: 1024,
            metrics_out: None,
            metrics_interval: Duration::from_secs(1),
        }
    }
}

/// Outcome of one [`serve`] run.
pub struct ServeSummary {
    /// Responses written.
    pub responses: u64,
    /// Engine metrics at end of stream.
    pub metrics: MetricsSnapshot,
}

fn immediate_response(id: u64, message: String) -> EngineResponse {
    EngineResponse {
        id,
        status: status::ERROR.to_string(),
        cached: false,
        timed_out: false,
        calibrations: None,
        schedule: None,
        error: Some(message),
        solve_us: 0,
        lp: None,
        phases: None,
        session: None,
    }
}

fn immediate_error(id: u64, message: String) -> Pending {
    Pending::Immediate(Box::new(immediate_response(id, message)))
}

/// Serialize one response, record the serialization latency, write and
/// flush it.
fn write_response<W: Write>(
    engine: &Engine,
    output: &mut W,
    response: &EngineResponse,
    responses: &mut u64,
) -> std::io::Result<()> {
    let started = Instant::now();
    let json = serde_json::to_string(response).expect("response serialization is infallible");
    engine.record_serialize_time(started.elapsed());
    writeln!(output, "{json}")?;
    output.flush()?;
    *responses += 1;
    Ok(())
}

/// Pop and write every already-resolved response at the head of the
/// queue. Responses behind an unresolved head stay queued to preserve
/// input order.
fn drain_ready<W: Write>(
    engine: &Engine,
    pending: &mut VecDeque<Pending>,
    output: &mut W,
    responses: &mut u64,
) -> std::io::Result<()> {
    while let Some(head) = pending.front_mut() {
        match head.poll() {
            Some(response) => {
                pending.pop_front();
                write_response(engine, output, &response, responses)?;
            }
            None => break,
        }
    }
    Ok(())
}

fn write_metrics_file(engine: &Engine, path: &std::path::Path) -> std::io::Result<()> {
    let text = prometheus_text(&engine.metrics());
    std::fs::write(path, text)
}

/// [`serve_with`] under default [`ServeOptions`].
pub fn serve<R: BufRead, W: Write>(
    input: R,
    output: &mut W,
    config: EngineConfig,
) -> std::io::Result<ServeSummary> {
    serve_with(input, output, config, &ServeOptions::default())
}

/// Read JSONL requests from `input`, solve them on `config`'s worker pool,
/// and stream JSONL responses to `output` in input order (see the module
/// docs for the id contract and backpressure behavior).
///
/// I/O errors abort the run; per-request failures do not.
pub fn serve_with<R: BufRead, W: Write>(
    input: R,
    output: &mut W,
    config: EngineConfig,
    opts: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    let engine = Engine::new(config);
    let max_pending = opts.max_pending.max(1);
    let mut pending: VecDeque<Pending> = VecDeque::new();
    let mut responses = 0u64;
    let mut last_metrics = Instant::now();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fallback_id = FALLBACK_ID_BASE + lineno as u64;
        let entry = match serde_json::from_str::<EngineRequest>(&line) {
            Ok(mut request) => match request.id {
                Some(explicit) if explicit >= FALLBACK_ID_BASE => immediate_error(
                    explicit,
                    format!(
                        "line {}: id {explicit} is in the server-reserved range \
                         (ids must be < {FALLBACK_ID_BASE})",
                        lineno + 1
                    ),
                ),
                _ => {
                    if request.id.is_none() {
                        request.id = Some(fallback_id);
                    }
                    let id = request.id.expect("id assigned above");
                    if request.session.is_some() {
                        // Session commands are ordered stream state (a
                        // delta must be visible to the next solve), so
                        // they run synchronously here instead of on the
                        // worker pool.
                        Pending::Immediate(Box::new(engine.session_command(id, &request)))
                    } else {
                        match engine.submit(request) {
                            Ok(slot) => Pending::InFlight(slot),
                            Err(e) => immediate_error(id, e.to_string()),
                        }
                    }
                }
            },
            Err(e) => immediate_error(fallback_id, format!("line {}: {e}", lineno + 1)),
        };
        pending.push_back(entry);
        drain_ready(&engine, &mut pending, output, &mut responses)?;
        while pending.len() >= max_pending {
            // Bounded buffering: block on the head-of-line response
            // instead of queueing the rest of the input.
            let head = pending.pop_front().expect("len >= 1").wait();
            write_response(&engine, output, &head, &mut responses)?;
            drain_ready(&engine, &mut pending, output, &mut responses)?;
        }
        if let Some(path) = &opts.metrics_out {
            if last_metrics.elapsed() >= opts.metrics_interval {
                write_metrics_file(&engine, path)?;
                last_metrics = Instant::now();
            }
        }
    }

    while let Some(entry) = pending.pop_front() {
        let response = entry.wait();
        write_response(&engine, output, &response, &mut responses)?;
    }
    output.flush()?;
    let metrics = engine.metrics();
    if let Some(path) = &opts.metrics_out {
        write_metrics_file(&engine, path)?;
    }
    Ok(ServeSummary { responses, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    fn request_line(id: u64, proc: i64) -> String {
        format!(
            "{{\"id\": {id}, \"instance\": {{\"jobs\": [{{\"id\": 0, \"release\": 0, \
             \"deadline\": 30, \"proc\": {proc}}}], \"machines\": 1, \"calib_len\": 10}}}}"
        )
    }

    fn anonymous_request_line(proc: i64) -> String {
        format!(
            "{{\"instance\": {{\"jobs\": [{{\"id\": 0, \"release\": 0, \
             \"deadline\": 30, \"proc\": {proc}}}], \"machines\": 1, \"calib_len\": 10}}}}"
        )
    }

    #[test]
    fn serves_in_order_with_errors_inline() {
        let input = format!(
            "{}\nnot json\n\n{}\n",
            request_line(7, 4),
            request_line(9, 5)
        );
        let mut out = Vec::new();
        let summary = serve(
            input.as_bytes(),
            &mut out,
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.responses, 3);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["id"].as_u64(), Some(7));
        assert_eq!(first["status"].as_str(), Some("ok"));
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["status"].as_str(), Some("error"));
        let third: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(third["id"].as_u64(), Some(9));
        // The malformed line never reached the engine: 2 solves, 0 errors.
        assert_eq!(summary.metrics.errors, 0);
        assert_eq!(summary.metrics.completed, 2);
        assert!(summary.metrics.serialize_time.count >= 3);
    }

    #[test]
    fn fallback_ids_do_not_collide_with_explicit_ids() {
        // Line 0 claims explicit id 1; line 1 omits its id. Before the ids
        // were namespaced, the second response also got id 1.
        let input = format!("{}\n{}\n", request_line(1, 4), anonymous_request_line(5));
        let mut out = Vec::new();
        serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(first["id"].as_u64(), Some(1));
        assert_eq!(second["id"].as_u64(), Some(FALLBACK_ID_BASE + 1));
    }

    #[test]
    fn reserved_explicit_id_is_rejected() {
        let input = format!("{}\n", request_line(FALLBACK_ID_BASE + 5, 4));
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        assert_eq!(summary.responses, 1);
        let resp: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&out).unwrap().lines().next().unwrap())
                .unwrap();
        assert_eq!(resp["status"].as_str(), Some("error"));
        assert!(
            resp["error"]
                .as_str()
                .unwrap()
                .contains("server-reserved range"),
            "{resp:?}"
        );
        // It never reached the engine.
        assert_eq!(summary.metrics.requests, 0);
    }

    /// Yields one request line per `read` call, sleeping before the final
    /// line so earlier requests have time to resolve. At EOF it records
    /// whether the writer had already emitted a response — the serve loop
    /// drains opportunistically after each submit, so a response written
    /// before the EOF read proves pre-EOF streaming.
    struct GatedReader {
        lines: Vec<String>,
        next: usize,
        written: Arc<AtomicU64>,
        streamed: Arc<AtomicBool>,
    }

    impl Read for GatedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.next >= self.lines.len() {
                // Grace period: the drain after the last submit races the
                // last-but-one solve; give it a bounded moment. (The write
                // happens on the serve thread before this read is issued,
                // so in the common case written > 0 already.)
                let deadline = Instant::now() + Duration::from_secs(10);
                while self.written.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(1));
                }
                if self.written.load(Ordering::SeqCst) > 0 {
                    self.streamed.store(true, Ordering::SeqCst);
                }
                return Ok(0);
            }
            if self.next == self.lines.len() - 1 {
                // Let the earlier requests finish solving so the drain
                // after this line's submit flushes them pre-EOF.
                std::thread::sleep(Duration::from_secs(1));
            }
            let line = self.lines[self.next].as_bytes();
            assert!(buf.len() >= line.len(), "test lines fit one read");
            buf[..line.len()].copy_from_slice(line);
            self.next += 1;
            Ok(line.len())
        }
    }

    struct CountingWriter {
        buf: Vec<u8>,
        lines: Arc<AtomicU64>,
    }

    impl Write for CountingWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(data);
            let newlines = data.iter().filter(|&&b| b == b'\n').count() as u64;
            self.lines.fetch_add(newlines, Ordering::SeqCst);
            Ok(data.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streams_first_response_before_input_is_exhausted() {
        let written = Arc::new(AtomicU64::new(0));
        let streamed = Arc::new(AtomicBool::new(false));
        let reader = GatedReader {
            lines: vec![
                format!("{}\n", request_line(0, 4)),
                format!("{}\n", request_line(1, 5)),
                format!("{}\n", request_line(2, 6)),
            ],
            next: 0,
            written: Arc::clone(&written),
            streamed: Arc::clone(&streamed),
        };
        let mut out = CountingWriter {
            buf: Vec::new(),
            lines: Arc::clone(&written),
        };
        let summary = serve(
            BufReader::new(reader),
            &mut out,
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.responses, 3);
        assert!(
            streamed.load(Ordering::SeqCst),
            "no response was written before the input finished"
        );
        let lines: Vec<&str> = std::str::from_utf8(&out.buf).unwrap().lines().collect();
        let ids: Vec<u64> = lines
            .iter()
            .map(|l| {
                serde_json::from_str::<serde_json::Value>(l).unwrap()["id"]
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2], "streaming must preserve input order");
    }

    #[test]
    fn bounded_pending_still_preserves_order() {
        let input: String = (0..20)
            .map(|i| format!("{}\n", request_line(i, 2 + (i as i64 % 7))))
            .collect();
        let mut out = Vec::new();
        let summary = serve_with(
            input.as_bytes(),
            &mut out,
            EngineConfig {
                workers: 4,
                ..EngineConfig::default()
            },
            &ServeOptions {
                max_pending: 2,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(summary.responses, 20);
        let ids: Vec<u64> = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| {
                serde_json::from_str::<serde_json::Value>(l).unwrap()["id"]
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn session_protocol_round_trips_over_jsonl() {
        use crate::engine::SESSION_ID_BASE;
        // The sid is assigned by the server, but the first session on a
        // fresh engine always gets SESSION_ID_BASE, so the script can be
        // written ahead of time — exactly how `ise session` scripts work.
        let sid = SESSION_ID_BASE;
        let open = "{\"id\": 1, \"session\": {\"op\": \"open\"}, \"instance\": {\"jobs\": \
             [{\"id\": 0, \"release\": 0, \"deadline\": 40, \"proc\": 7}, \
              {\"id\": 1, \"release\": 0, \"deadline\": 12, \"proc\": 6}], \
             \"machines\": 1, \"calib_len\": 10}}"
            .to_string();
        let cmd = |id: u64, body: &str| format!("{{\"id\": {id}, \"session\": {{{body}}}}}");
        let input = [
            open,
            cmd(2, &format!("\"op\": \"solve\", \"sid\": {sid}")),
            cmd(
                3,
                &format!(
                    "\"op\": \"delta\", \"sid\": {sid}, \
                     \"delta\": {{\"op\": \"set_machines\", \"machines\": 2}}"
                ),
            ),
            cmd(4, &format!("\"op\": \"solve\", \"sid\": {sid}")),
            cmd(5, &format!("\"op\": \"close\", \"sid\": {sid}")),
            cmd(6, &format!("\"op\": \"solve\", \"sid\": {sid}")),
        ]
        .join("\n")
            + "\n";
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        assert_eq!(summary.responses, 6);
        let lines: Vec<serde_json::Value> = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines[0]["status"].as_str(), Some("ok"));
        assert_eq!(lines[0]["session"]["sid"].as_u64(), Some(sid));
        assert_eq!(
            lines[1]["session"]["telemetry"]["tier"].as_str(),
            Some("cold")
        );
        assert!(lines[1]["calibrations"].as_u64().is_some());
        assert_eq!(lines[2]["session"]["staged"].as_u64(), Some(1));
        assert_eq!(
            lines[3]["session"]["telemetry"]["tier"].as_str(),
            Some("basis")
        );
        assert_eq!(
            lines[3]["session"]["telemetry"]["warm_started"].as_bool(),
            Some(true)
        );
        assert_eq!(lines[4]["status"].as_str(), Some("ok"));
        // Solving a closed session is an inline error, not a stream abort.
        assert_eq!(lines[5]["status"].as_str(), Some("error"));
        assert!(
            lines[5]["error"]
                .as_str()
                .unwrap()
                .contains("unknown session id"),
            "{:?}",
            lines[5]
        );
        assert_eq!(summary.metrics.session_reuse_basis, 1);
        assert_eq!(summary.metrics.session_reuse_cold, 1);
    }

    #[test]
    fn metrics_out_writes_prometheus_text() {
        let path =
            std::env::temp_dir().join(format!("ise-serve-metrics-{}.prom", std::process::id()));
        let input = format!("{}\n{}\n", request_line(0, 4), request_line(1, 5));
        let mut out = Vec::new();
        serve_with(
            input.as_bytes(),
            &mut out,
            EngineConfig::default(),
            &ServeOptions {
                metrics_out: Some(path.clone()),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("# TYPE ise_requests_total counter"), "{text}");
        assert!(text.contains("ise_requests_total 2"), "{text}");
        assert!(
            text.contains("# TYPE ise_solve_time_us histogram"),
            "{text}"
        );
    }
}
