//! JSONL batch serving: one request per input line, one response per
//! output line, in input order, **streamed** — each response is written
//! (and flushed) as soon as it and everything before it has resolved,
//! so a consumer tailing the output sees results while the input is
//! still being produced.
//!
//! Request lines are [`EngineRequest`] JSON objects; the only required
//! field is `instance`. Malformed lines produce an `"error"` response
//! instead of aborting the stream, so one bad record cannot poison a
//! batch. Blank lines are skipped. Lines longer than
//! [`ServeOptions::max_line_len`] are discarded without buffering and
//! answered with an inline error, so a single runaway record (or a
//! hostile network client) cannot balloon server memory.
//!
//! # Sessions
//!
//! A request carrying a `session` command (`{"session": {"op": "open"},
//! "instance": {...}}`, then `delta`/`solve`/`close` with the returned
//! `sid`) is executed synchronously in stream order against the engine's
//! incremental-session registry instead of the worker pool — session
//! state is ordered, so a staged delta is always visible to the next
//! `solve` on the stream. Session ids live in their own
//! [`crate::engine::SESSION_ID_BASE`] (`2^62`) namespace and never
//! collide with response ids. Over TCP (see [`crate::net`]) sessions are
//! additionally pinned to the connection that opened them.
//!
//! # Admin commands
//!
//! A line of the form `{"cmd": "shutdown"}` (optionally with an `id`)
//! initiates a graceful drain: no further input is read, every in-flight
//! request completes and is written in order, the shutdown line itself is
//! acknowledged with an `"ok"` response, and the stream ends. On the TCP
//! frontend this drains the whole server (stop accepting, drain every
//! connection, flush, exit).
//!
//! # Id contract
//!
//! Every response echoes an id. Explicit request ids must be below
//! [`FALLBACK_ID_BASE`] (`2^63`); ids at or above it are reserved for the
//! server and such a request gets an `"error"` response. Requests without
//! an id are assigned `FALLBACK_ID_BASE + line_number` (0-based), which
//! cannot collide with any valid explicit id — mixing explicit and
//! implicit ids in one stream is safe.
//!
//! # Backpressure
//!
//! At most [`ServeOptions::max_pending`] responses are buffered awaiting
//! an earlier (head-of-line) response; beyond that the reader blocks on
//! the head rather than buffering the whole input.

use crate::engine::{
    status, Engine, EngineConfig, EngineRequest, EngineResponse, ResponseSlot, GLOBAL_SCOPE,
};
use crate::metrics::{prometheus_text, MetricsSnapshot, NetMetrics};
use std::collections::VecDeque;
use std::io::{BufRead, ErrorKind, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// First id the server assigns to requests that omit `id`. Explicit ids
/// must be strictly below this; the range `[2^63, 2^64)` belongs to the
/// server.
pub const FALLBACK_ID_BASE: u64 = 1 << 63;

enum Pending {
    /// Submitted; the worker pool will fill the slot.
    InFlight(ResponseSlot),
    /// Failed before reaching the pool (parse error, reserved id,
    /// rejected submit) or resolved synchronously (session command,
    /// admin ack).
    Immediate(Box<EngineResponse>),
}

impl Pending {
    /// Non-blocking poll.
    fn poll(&mut self) -> Option<EngineResponse> {
        match self {
            Pending::InFlight(slot) => slot.try_take(),
            Pending::Immediate(_) => match std::mem::replace(self, Pending::taken()) {
                Pending::Immediate(r) => Some(*r),
                Pending::InFlight(_) => unreachable!("matched Immediate"),
            },
        }
    }

    /// Blocking resolve.
    fn wait(self) -> EngineResponse {
        match self {
            Pending::InFlight(slot) => slot.wait(),
            Pending::Immediate(r) => *r,
        }
    }

    /// Placeholder left behind by [`Pending::poll`] on an `Immediate`
    /// entry; the caller pops the entry immediately after.
    fn taken() -> Pending {
        Pending::Immediate(Box::new(immediate_response(0, "taken".to_string())))
    }
}

/// A pending response plus the instant it entered the write queue, so the
/// network frontend can histogram head-of-line wait.
struct Entry {
    pending: Pending,
    queued: Instant,
}

impl Entry {
    fn new(pending: Pending) -> Entry {
        Entry {
            pending,
            queued: Instant::now(),
        }
    }
}

/// How [`serve_with`] streams and reports.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Maximum responses buffered while waiting for an earlier one;
    /// reading blocks on the head-of-line response beyond this.
    pub max_pending: usize,
    /// Maximum accepted request-line length in bytes. Longer lines are
    /// discarded (never buffered) and answered with an inline error.
    pub max_line_len: usize,
    /// Write engine metrics in the Prometheus text format to this path,
    /// periodically and at end of stream.
    pub metrics_out: Option<PathBuf>,
    /// Cadence of periodic metrics writes (checked between input lines).
    pub metrics_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_pending: 1024,
            max_line_len: DEFAULT_MAX_LINE_LEN,
            metrics_out: None,
            metrics_interval: Duration::from_secs(1),
        }
    }
}

/// Default [`ServeOptions::max_line_len`]: 1 MiB comfortably fits any
/// realistic instance while bounding per-line memory.
pub const DEFAULT_MAX_LINE_LEN: usize = 1 << 20;

/// Outcome of one [`serve`] run.
pub struct ServeSummary {
    /// Responses written.
    pub responses: u64,
    /// Engine metrics at end of stream.
    pub metrics: MetricsSnapshot,
}

pub(crate) fn immediate_response(id: u64, message: String) -> EngineResponse {
    EngineResponse {
        id,
        status: status::ERROR.to_string(),
        cached: false,
        timed_out: false,
        calibrations: None,
        schedule: None,
        error: Some(message),
        solve_us: 0,
        lp: None,
        phases: None,
        session: None,
    }
}

fn immediate_error(id: u64, message: String) -> Pending {
    Pending::Immediate(Box::new(immediate_response(id, message)))
}

/// One line's worth of outcome from a bounded read.
pub(crate) enum LineRead {
    /// A complete line, newline (and any trailing `\r`) stripped.
    Line(String),
    /// The line exceeded the limit; its bytes through the next newline
    /// (or EOF) were consumed and discarded.
    TooLong,
    /// End of input with no pending bytes.
    Eof,
}

/// Incremental bounded line assembly. Partial-line state survives
/// `WouldBlock`/`TimedOut` errors from the underlying reader, so a
/// socket with a short read timeout can be *polled* for the next line —
/// that is how the TCP frontend streams responses out while the peer is
/// quiet — without ever losing bytes already pulled off the wire.
pub(crate) struct LineReader {
    buf: Vec<u8>,
    overlong: bool,
}

impl LineReader {
    pub(crate) fn new() -> LineReader {
        LineReader {
            buf: Vec::new(),
            overlong: false,
        }
    }

    /// Read one newline-terminated line from `input`, buffering at most
    /// `max_len` bytes. An over-limit line is *consumed* (streamed past
    /// in buffer-sized chunks, never accumulated) and reported as
    /// [`LineRead::TooLong`], so the reader stays line-synchronized with
    /// the peer. Invalid UTF-8 is replaced rather than treated as an I/O
    /// error — a garbage line should produce one inline parse error, not
    /// kill the stream.
    pub(crate) fn poll_line<R: BufRead>(
        &mut self,
        input: &mut R,
        max_len: usize,
    ) -> std::io::Result<LineRead> {
        loop {
            let available = match input.fill_buf() {
                Ok(a) => a,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Partial-line state stays in `self` for the next poll.
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF. A partial unterminated line still counts as a line
                // (matching `BufRead::lines`); an overlong one is
                // reported.
                let overlong = std::mem::replace(&mut self.overlong, false);
                let buf = std::mem::take(&mut self.buf);
                return Ok(if overlong {
                    LineRead::TooLong
                } else if buf.is_empty() {
                    LineRead::Eof
                } else {
                    finish_line(buf)
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    // A trailing `\r` is protocol framing, not payload:
                    // it is stripped below, so it does not count against
                    // the limit.
                    let ends_cr = if pos > 0 {
                        available[pos - 1] == b'\r'
                    } else {
                        self.buf.last() == Some(&b'\r')
                    };
                    let content_len = self.buf.len() + pos - usize::from(ends_cr);
                    if !self.overlong && content_len > max_len {
                        self.overlong = true;
                        self.buf.clear();
                    }
                    let overlong = std::mem::replace(&mut self.overlong, false);
                    let mut buf = std::mem::take(&mut self.buf);
                    if !overlong {
                        buf.extend_from_slice(&available[..pos]);
                    }
                    input.consume(pos + 1);
                    return Ok(if overlong {
                        LineRead::TooLong
                    } else {
                        finish_line(buf)
                    });
                }
                None => {
                    let len = available.len();
                    if !self.overlong {
                        // `+ 1` leaves room for a `\r` that may precede a
                        // newline in the next chunk; the exact check
                        // happens at the newline. Memory stays bounded by
                        // max + 1.
                        if self.buf.len() + len > max_len + 1 {
                            self.overlong = true;
                            self.buf.clear();
                        } else {
                            self.buf.extend_from_slice(available);
                        }
                    }
                    input.consume(len);
                }
            }
        }
    }
}

/// One-shot [`LineReader::poll_line`] for inputs without read timeouts.
#[cfg(test)]
pub(crate) fn read_bounded_line<R: BufRead>(
    input: &mut R,
    max_len: usize,
) -> std::io::Result<LineRead> {
    LineReader::new().poll_line(input, max_len)
}

fn finish_line(mut buf: Vec<u8>) -> LineRead {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
}

/// Serialize one response, record the serialization latency, write and
/// flush it.
fn write_response<W: Write>(
    engine: &Engine,
    output: &mut W,
    response: &EngineResponse,
    responses: &mut u64,
) -> std::io::Result<()> {
    let started = Instant::now();
    let json = serde_json::to_string(response).expect("response serialization is infallible");
    engine.record_serialize_time(started.elapsed());
    writeln!(output, "{json}")?;
    output.flush()?;
    *responses += 1;
    Ok(())
}

/// Write one resolved entry: record its write-queue wait (network runs
/// only), then serialize and flush.
fn write_entry<W: Write>(
    engine: &Engine,
    output: &mut W,
    response: &EngineResponse,
    queued: Instant,
    responses: &mut u64,
    net: Option<&NetMetrics>,
) -> std::io::Result<()> {
    let _span = ise_obs::Span::enter("net.write");
    if let Some(net) = net {
        net.write_queue_wait.record(queued.elapsed());
        NetMetrics::inc_counter(&net.responses_total);
    }
    write_response(engine, output, response, responses)
}

/// Pop and write every already-resolved response at the head of the
/// queue. Responses behind an unresolved head stay queued to preserve
/// input order.
fn drain_ready<W: Write>(
    engine: &Engine,
    pending: &mut VecDeque<Entry>,
    output: &mut W,
    responses: &mut u64,
    net: Option<&NetMetrics>,
) -> std::io::Result<()> {
    while let Some(head) = pending.front_mut() {
        match head.pending.poll() {
            Some(response) => {
                let queued = head.queued;
                pending.pop_front();
                write_entry(engine, output, &response, queued, responses, net)?;
            }
            None => break,
        }
    }
    Ok(())
}

/// Blocking drain: resolve and write everything left, in order.
fn drain_all<W: Write>(
    engine: &Engine,
    pending: &mut VecDeque<Entry>,
    output: &mut W,
    responses: &mut u64,
    net: Option<&NetMetrics>,
) -> std::io::Result<()> {
    while let Some(entry) = pending.pop_front() {
        let response = entry.pending.wait();
        write_entry(engine, output, &response, entry.queued, responses, net)?;
    }
    Ok(())
}

fn write_metrics_file(engine: &Engine, path: &std::path::Path) -> std::io::Result<()> {
    let text = prometheus_text(&engine.metrics());
    std::fs::write(path, text)
}

/// Why [`serve_lines`] stopped reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LoopExit {
    /// Input ended (EOF or peer disconnect).
    Eof,
    /// A `{"cmd": "shutdown"}` admin line was processed.
    Shutdown,
    /// A read timed out (`WouldBlock`/`TimedOut`) — the stream's idle
    /// timeout fired. Only reachable when the input has a read deadline.
    IdleTimeout,
}

/// Which stream this loop serves: its session scope and, for network
/// connections, the shared net metrics and idle budget.
pub(crate) struct StreamScope<'a> {
    /// Session scope commands on this stream run under
    /// ([`GLOBAL_SCOPE`] for stdin/file serving).
    pub scope: u64,
    /// Network counters, when this stream is a TCP connection.
    pub net: Option<&'a NetMetrics>,
    /// Give up on the stream when this long passes without a *complete*
    /// line (so a byte-trickling slow-loris cannot hold the connection
    /// open either). Requires the input to have a short read timeout,
    /// whose `WouldBlock` wakeups double as response-drain ticks.
    pub idle_timeout: Option<Duration>,
}

impl StreamScope<'_> {
    pub(crate) fn global() -> StreamScope<'static> {
        StreamScope {
            scope: GLOBAL_SCOPE,
            net: None,
            idle_timeout: None,
        }
    }
}

enum ParsedLine {
    Entry(Pending),
    /// The shutdown acknowledgment; the caller drains and stops reading.
    Shutdown(Pending),
}

/// Classify and dispatch one non-blank input line: admin command,
/// session command (synchronous, scope-checked), or worker-pool submit.
fn parse_line(engine: &Engine, scope: u64, line: &str, lineno: usize) -> ParsedLine {
    let fallback_id = FALLBACK_ID_BASE + lineno as u64;
    // Admin commands carry a top-level `"cmd"` key. The substring check is
    // a fast path: a `"cmd"` that merely appears inside some value falls
    // through to the normal request parse below.
    if line.contains("\"cmd\"") {
        if let Ok(v) = serde_json::from_str::<serde_json::Value>(line) {
            if let Some(cmd) = v.get("cmd").and_then(|c| c.as_str()) {
                let id = v
                    .get("id")
                    .and_then(|i| i.as_u64())
                    .filter(|&i| i < FALLBACK_ID_BASE)
                    .unwrap_or(fallback_id);
                return match cmd {
                    "shutdown" => {
                        let mut ack = immediate_response(id, String::new());
                        ack.status = status::OK.to_string();
                        ack.error = None;
                        ParsedLine::Shutdown(Pending::Immediate(Box::new(ack)))
                    }
                    other => ParsedLine::Entry(immediate_error(
                        id,
                        format!(
                            "line {}: unknown admin cmd `{other}` (expected shutdown)",
                            lineno + 1
                        ),
                    )),
                };
            }
        }
    }
    let entry = match serde_json::from_str::<EngineRequest>(line) {
        Ok(mut request) => match request.id {
            Some(explicit) if explicit >= FALLBACK_ID_BASE => immediate_error(
                explicit,
                format!(
                    "line {}: id {explicit} is in the server-reserved range \
                     (ids must be < {FALLBACK_ID_BASE})",
                    lineno + 1
                ),
            ),
            _ => {
                if request.id.is_none() {
                    request.id = Some(fallback_id);
                }
                let id = request.id.expect("id assigned above");
                if request.session.is_some() {
                    // Session commands are ordered stream state (a delta
                    // must be visible to the next solve), so they run
                    // synchronously here instead of on the worker pool.
                    Pending::Immediate(Box::new(engine.session_command_scoped(id, &request, scope)))
                } else {
                    match engine.submit(request) {
                        Ok(slot) => Pending::InFlight(slot),
                        Err(e) => immediate_error(id, e.to_string()),
                    }
                }
            }
        },
        Err(e) => immediate_error(fallback_id, format!("line {}: {e}", lineno + 1)),
    };
    ParsedLine::Entry(entry)
}

/// The serve loop shared by the stdin/file path and every TCP connection:
/// read bounded lines, dispatch them against `engine`, and stream ordered
/// responses to `output` under the `max_pending` head-of-line discipline.
/// Returns why reading stopped; all pending work is drained and flushed
/// before returning (including on a returned I/O error's best-effort
/// path — a dead writer ends the drain early).
pub(crate) fn serve_lines<R: BufRead, W: Write>(
    engine: &Engine,
    input: &mut R,
    output: &mut W,
    opts: &ServeOptions,
    ctx: &StreamScope<'_>,
    responses: &mut u64,
) -> std::io::Result<LoopExit> {
    let max_pending = opts.max_pending.max(1);
    let mut pending: VecDeque<Entry> = VecDeque::new();
    let mut line_reader = LineReader::new();
    let mut last_metrics = Instant::now();
    let mut last_line = Instant::now();
    let mut lineno = 0usize;
    let exit = loop {
        let line = {
            let _span = ise_obs::Span::enter("net.read");
            line_reader.poll_line(input, opts.max_line_len)
        };
        let parsed = match line {
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // A read-timeout tick, not (yet) an idle disconnect: flush
                // whatever resolved while the peer was quiet, then either
                // give up on a genuinely idle stream or poll again.
                drain_ready(engine, &mut pending, output, responses, ctx.net)?;
                match ctx.idle_timeout {
                    Some(idle) if last_line.elapsed() >= idle => break LoopExit::IdleTimeout,
                    _ => continue,
                }
            }
            Err(e) => {
                // Flush whatever already resolved before surfacing the
                // error; ignore secondary failures on the way down.
                let _ = drain_all(engine, &mut pending, output, responses, ctx.net);
                return Err(e);
            }
            Ok(LineRead::Eof) => break LoopExit::Eof,
            Ok(LineRead::TooLong) => {
                last_line = Instant::now();
                if let Some(net) = ctx.net {
                    NetMetrics::inc_counter(&net.oversize_lines);
                }
                let entry = immediate_error(
                    FALLBACK_ID_BASE + lineno as u64,
                    format!(
                        "line {}: exceeds the maximum line length ({} bytes)",
                        lineno + 1,
                        opts.max_line_len
                    ),
                );
                lineno += 1;
                ParsedLine::Entry(entry)
            }
            Ok(LineRead::Line(text)) => {
                last_line = Instant::now();
                let this_line = lineno;
                lineno += 1;
                if text.trim().is_empty() {
                    continue;
                }
                parse_line(engine, ctx.scope, &text, this_line)
            }
        };
        match parsed {
            ParsedLine::Shutdown(ack) => {
                pending.push_back(Entry::new(ack));
                break LoopExit::Shutdown;
            }
            ParsedLine::Entry(entry) => {
                pending.push_back(Entry::new(entry));
                drain_ready(engine, &mut pending, output, responses, ctx.net)?;
                while pending.len() >= max_pending {
                    // Bounded buffering: block on the head-of-line
                    // response instead of queueing the rest of the input.
                    let head = pending.pop_front().expect("len >= 1");
                    let response = head.pending.wait();
                    write_entry(engine, output, &response, head.queued, responses, ctx.net)?;
                    drain_ready(engine, &mut pending, output, responses, ctx.net)?;
                }
            }
        }
        // Periodic metrics are per-process state: the file/stdin path
        // writes them here; the TCP frontend's acceptor owns them instead
        // (it folds in the net series).
        if ctx.net.is_none() {
            if let Some(path) = &opts.metrics_out {
                if last_metrics.elapsed() >= opts.metrics_interval {
                    write_metrics_file(engine, path)?;
                    last_metrics = Instant::now();
                }
            }
        }
    };
    drain_all(engine, &mut pending, output, responses, ctx.net)?;
    output.flush()?;
    Ok(exit)
}

/// [`serve_with`] under default [`ServeOptions`].
pub fn serve<R: BufRead, W: Write>(
    input: R,
    output: &mut W,
    config: EngineConfig,
) -> std::io::Result<ServeSummary> {
    serve_with(input, output, config, &ServeOptions::default())
}

/// Read JSONL requests from `input`, solve them on `config`'s worker pool,
/// and stream JSONL responses to `output` in input order (see the module
/// docs for the id contract and backpressure behavior).
///
/// I/O errors abort the run; per-request failures do not. A
/// `{"cmd": "shutdown"}` line stops reading early after a full drain.
pub fn serve_with<R: BufRead, W: Write>(
    input: R,
    output: &mut W,
    config: EngineConfig,
    opts: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    let engine = Engine::new(config);
    let mut input = input;
    let mut responses = 0u64;
    serve_lines(
        &engine,
        &mut input,
        output,
        opts,
        &StreamScope::global(),
        &mut responses,
    )?;
    let metrics = engine.metrics();
    if let Some(path) = &opts.metrics_out {
        write_metrics_file(&engine, path)?;
    }
    Ok(ServeSummary { responses, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor, Read};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    fn request_line(id: u64, proc: i64) -> String {
        format!(
            "{{\"id\": {id}, \"instance\": {{\"jobs\": [{{\"id\": 0, \"release\": 0, \
             \"deadline\": 30, \"proc\": {proc}}}], \"machines\": 1, \"calib_len\": 10}}}}"
        )
    }

    fn anonymous_request_line(proc: i64) -> String {
        format!(
            "{{\"instance\": {{\"jobs\": [{{\"id\": 0, \"release\": 0, \
             \"deadline\": 30, \"proc\": {proc}}}], \"machines\": 1, \"calib_len\": 10}}}}"
        )
    }

    #[test]
    fn serves_in_order_with_errors_inline() {
        let input = format!(
            "{}\nnot json\n\n{}\n",
            request_line(7, 4),
            request_line(9, 5)
        );
        let mut out = Vec::new();
        let summary = serve(
            input.as_bytes(),
            &mut out,
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.responses, 3);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["id"].as_u64(), Some(7));
        assert_eq!(first["status"].as_str(), Some("ok"));
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["status"].as_str(), Some("error"));
        let third: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(third["id"].as_u64(), Some(9));
        // The malformed line never reached the engine: 2 solves, 0 errors.
        assert_eq!(summary.metrics.errors, 0);
        assert_eq!(summary.metrics.completed, 2);
        assert!(summary.metrics.serialize_time.count >= 3);
    }

    #[test]
    fn fallback_ids_do_not_collide_with_explicit_ids() {
        // Line 0 claims explicit id 1; line 1 omits its id. Before the ids
        // were namespaced, the second response also got id 1.
        let input = format!("{}\n{}\n", request_line(1, 4), anonymous_request_line(5));
        let mut out = Vec::new();
        serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(first["id"].as_u64(), Some(1));
        assert_eq!(second["id"].as_u64(), Some(FALLBACK_ID_BASE + 1));
    }

    #[test]
    fn reserved_explicit_id_is_rejected() {
        let input = format!("{}\n", request_line(FALLBACK_ID_BASE + 5, 4));
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        assert_eq!(summary.responses, 1);
        let resp: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&out).unwrap().lines().next().unwrap())
                .unwrap();
        assert_eq!(resp["status"].as_str(), Some("error"));
        assert!(
            resp["error"]
                .as_str()
                .unwrap()
                .contains("server-reserved range"),
            "{resp:?}"
        );
        // It never reached the engine.
        assert_eq!(summary.metrics.requests, 0);
    }

    #[test]
    fn bounded_line_reader_boundaries() {
        // Small BufReader capacity forces multi-chunk assembly.
        let text = "abcd\nefgh\r\nij\ntoolongline\nk";
        let mut r = BufReader::with_capacity(3, Cursor::new(text.as_bytes()));
        let max = 4;
        match read_bounded_line(&mut r, max).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "abcd"),
            _ => panic!("exact-limit line must pass"),
        }
        match read_bounded_line(&mut r, max).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "efgh"),
            _ => panic!("CRLF line of limit length must pass"),
        }
        match read_bounded_line(&mut r, max).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "ij"),
            _ => panic!("short line"),
        }
        assert!(matches!(
            read_bounded_line(&mut r, max).unwrap(),
            LineRead::TooLong
        ));
        // The reader resynchronized past the newline: the trailing
        // unterminated byte still comes through as a line.
        match read_bounded_line(&mut r, max).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "k"),
            _ => panic!("unterminated final line"),
        }
        assert!(matches!(
            read_bounded_line(&mut r, max).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn oversize_line_gets_inline_error_and_stream_continues() {
        // The serve loop must answer the over-limit line inline (without
        // ever buffering it) and keep serving the rest of the stream.
        let huge = format!("{{\"id\": 1, \"instance\": \"{}\"}}", "x".repeat(4096));
        let input = format!("{huge}\n{}\n", request_line(2, 4));
        let mut out = Vec::new();
        let summary = serve_with(
            input.as_bytes(),
            &mut out,
            EngineConfig::default(),
            &ServeOptions {
                max_line_len: 256,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(summary.responses, 2);
        let lines: Vec<serde_json::Value> = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines[0]["status"].as_str(), Some("error"));
        assert_eq!(lines[0]["id"].as_u64(), Some(FALLBACK_ID_BASE));
        assert!(
            lines[0]["error"]
                .as_str()
                .unwrap()
                .contains("maximum line length (256 bytes)"),
            "{:?}",
            lines[0]
        );
        assert_eq!(lines[1]["id"].as_u64(), Some(2));
        assert_eq!(lines[1]["status"].as_str(), Some("ok"));
        // The oversize line never reached the engine.
        assert_eq!(summary.metrics.requests, 1);
    }

    #[test]
    fn admin_shutdown_drains_and_stops_reading() {
        let input = format!(
            "{}\n{{\"id\": 5, \"cmd\": \"shutdown\"}}\n{}\n",
            request_line(1, 4),
            request_line(9, 5)
        );
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        // The request before the shutdown resolves; the line after it is
        // never read.
        assert_eq!(summary.responses, 2);
        assert_eq!(summary.metrics.requests, 1);
        let lines: Vec<serde_json::Value> = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines[0]["id"].as_u64(), Some(1));
        assert_eq!(lines[0]["status"].as_str(), Some("ok"));
        assert_eq!(lines[1]["id"].as_u64(), Some(5));
        assert_eq!(lines[1]["status"].as_str(), Some("ok"));
        assert!(lines[1]["schedule"].is_null());
    }

    #[test]
    fn unknown_admin_cmd_is_an_inline_error() {
        let input = "{\"cmd\": \"reboot\"}\n".to_string() + &request_line(3, 4) + "\n";
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        assert_eq!(summary.responses, 2);
        let lines: Vec<serde_json::Value> = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines[0]["status"].as_str(), Some("error"));
        assert!(
            lines[0]["error"]
                .as_str()
                .unwrap()
                .contains("unknown admin"),
            "{:?}",
            lines[0]
        );
        assert_eq!(lines[1]["status"].as_str(), Some("ok"));
    }

    #[test]
    fn cmd_inside_a_value_is_not_an_admin_command() {
        // `"cmd"` appears as a *value*, not a key: the line must go down
        // the normal request path (and fail on the unknown backend).
        let input = "{\"id\": 1, \"instance\": {\"jobs\": [{\"id\": 0, \"release\": 0, \
                     \"deadline\": 30, \"proc\": 4}], \"machines\": 1, \"calib_len\": 10}, \
                     \"mm\": \"cmd\"}\n";
        let mut out = Vec::new();
        serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        let resp: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&out).unwrap().lines().next().unwrap())
                .unwrap();
        assert_eq!(resp["status"].as_str(), Some("error"));
        assert!(
            resp["error"].as_str().unwrap().contains("mm backend"),
            "{resp:?}"
        );
    }

    /// Yields one request line per `read` call, sleeping before the final
    /// line so earlier requests have time to resolve. At EOF it records
    /// whether the writer had already emitted a response — the serve loop
    /// drains opportunistically after each submit, so a response written
    /// before the EOF read proves pre-EOF streaming.
    struct GatedReader {
        lines: Vec<String>,
        next: usize,
        written: Arc<AtomicU64>,
        streamed: Arc<AtomicBool>,
    }

    impl Read for GatedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.next >= self.lines.len() {
                // Grace period: the drain after the last submit races the
                // last-but-one solve; give it a bounded moment. (The write
                // happens on the serve thread before this read is issued,
                // so in the common case written > 0 already.)
                let deadline = Instant::now() + Duration::from_secs(10);
                while self.written.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(1));
                }
                if self.written.load(Ordering::SeqCst) > 0 {
                    self.streamed.store(true, Ordering::SeqCst);
                }
                return Ok(0);
            }
            if self.next == self.lines.len() - 1 {
                // Let the earlier requests finish solving so the drain
                // after this line's submit flushes them pre-EOF.
                std::thread::sleep(Duration::from_secs(1));
            }
            let line = self.lines[self.next].as_bytes();
            assert!(buf.len() >= line.len(), "test lines fit one read");
            buf[..line.len()].copy_from_slice(line);
            self.next += 1;
            Ok(line.len())
        }
    }

    struct CountingWriter {
        buf: Vec<u8>,
        lines: Arc<AtomicU64>,
    }

    impl Write for CountingWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(data);
            let newlines = data.iter().filter(|&&b| b == b'\n').count() as u64;
            self.lines.fetch_add(newlines, Ordering::SeqCst);
            Ok(data.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streams_first_response_before_input_is_exhausted() {
        let written = Arc::new(AtomicU64::new(0));
        let streamed = Arc::new(AtomicBool::new(false));
        let reader = GatedReader {
            lines: vec![
                format!("{}\n", request_line(0, 4)),
                format!("{}\n", request_line(1, 5)),
                format!("{}\n", request_line(2, 6)),
            ],
            next: 0,
            written: Arc::clone(&written),
            streamed: Arc::clone(&streamed),
        };
        let mut out = CountingWriter {
            buf: Vec::new(),
            lines: Arc::clone(&written),
        };
        let summary = serve(
            BufReader::new(reader),
            &mut out,
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.responses, 3);
        assert!(
            streamed.load(Ordering::SeqCst),
            "no response was written before the input finished"
        );
        let lines: Vec<&str> = std::str::from_utf8(&out.buf).unwrap().lines().collect();
        let ids: Vec<u64> = lines
            .iter()
            .map(|l| {
                serde_json::from_str::<serde_json::Value>(l).unwrap()["id"]
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2], "streaming must preserve input order");
    }

    #[test]
    fn bounded_pending_still_preserves_order() {
        let input: String = (0..20)
            .map(|i| format!("{}\n", request_line(i, 2 + (i as i64 % 7))))
            .collect();
        let mut out = Vec::new();
        let summary = serve_with(
            input.as_bytes(),
            &mut out,
            EngineConfig {
                workers: 4,
                ..EngineConfig::default()
            },
            &ServeOptions {
                max_pending: 2,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(summary.responses, 20);
        let ids: Vec<u64> = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| {
                serde_json::from_str::<serde_json::Value>(l).unwrap()["id"]
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn session_protocol_round_trips_over_jsonl() {
        use crate::engine::SESSION_ID_BASE;
        // The sid is assigned by the server, but the first session on a
        // fresh engine always gets SESSION_ID_BASE, so the script can be
        // written ahead of time — exactly how `ise session` scripts work.
        let sid = SESSION_ID_BASE;
        let open = "{\"id\": 1, \"session\": {\"op\": \"open\"}, \"instance\": {\"jobs\": \
             [{\"id\": 0, \"release\": 0, \"deadline\": 40, \"proc\": 7}, \
              {\"id\": 1, \"release\": 0, \"deadline\": 12, \"proc\": 6}], \
             \"machines\": 1, \"calib_len\": 10}}"
            .to_string();
        let cmd = |id: u64, body: &str| format!("{{\"id\": {id}, \"session\": {{{body}}}}}");
        let input = [
            open,
            cmd(2, &format!("\"op\": \"solve\", \"sid\": {sid}")),
            cmd(
                3,
                &format!(
                    "\"op\": \"delta\", \"sid\": {sid}, \
                     \"delta\": {{\"op\": \"set_machines\", \"machines\": 2}}"
                ),
            ),
            cmd(4, &format!("\"op\": \"solve\", \"sid\": {sid}")),
            cmd(5, &format!("\"op\": \"close\", \"sid\": {sid}")),
            cmd(6, &format!("\"op\": \"solve\", \"sid\": {sid}")),
        ]
        .join("\n")
            + "\n";
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, EngineConfig::default()).unwrap();
        assert_eq!(summary.responses, 6);
        let lines: Vec<serde_json::Value> = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines[0]["status"].as_str(), Some("ok"));
        assert_eq!(lines[0]["session"]["sid"].as_u64(), Some(sid));
        assert_eq!(
            lines[1]["session"]["telemetry"]["tier"].as_str(),
            Some("cold")
        );
        assert!(lines[1]["calibrations"].as_u64().is_some());
        assert_eq!(lines[2]["session"]["staged"].as_u64(), Some(1));
        assert_eq!(
            lines[3]["session"]["telemetry"]["tier"].as_str(),
            Some("basis")
        );
        assert_eq!(
            lines[3]["session"]["telemetry"]["warm_started"].as_bool(),
            Some(true)
        );
        assert_eq!(lines[4]["status"].as_str(), Some("ok"));
        // Solving a closed session is an inline error, not a stream abort.
        assert_eq!(lines[5]["status"].as_str(), Some("error"));
        assert!(
            lines[5]["error"]
                .as_str()
                .unwrap()
                .contains("unknown session id"),
            "{:?}",
            lines[5]
        );
        assert_eq!(summary.metrics.session_reuse_basis, 1);
        assert_eq!(summary.metrics.session_reuse_cold, 1);
    }

    #[test]
    fn metrics_out_writes_prometheus_text() {
        let path =
            std::env::temp_dir().join(format!("ise-serve-metrics-{}.prom", std::process::id()));
        let input = format!("{}\n{}\n", request_line(0, 4), request_line(1, 5));
        let mut out = Vec::new();
        serve_with(
            input.as_bytes(),
            &mut out,
            EngineConfig::default(),
            &ServeOptions {
                metrics_out: Some(path.clone()),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("# TYPE ise_requests_total counter"), "{text}");
        assert!(text.contains("ise_requests_total 2"), "{text}");
        assert!(
            text.contains("# TYPE ise_solve_time_us histogram"),
            "{text}"
        );
    }
}
